/**
 * @file
 * Wall-clock stopwatch used to measure real (host) time, e.g. predictor
 * inference microseconds for the Fig. 7/8 reproductions. Simulated time
 * lives in src/sim and is unrelated to this clock.
 */

#ifndef COTTAGE_UTIL_STOPWATCH_H
#define COTTAGE_UTIL_STOPWATCH_H

#include <chrono>

namespace cottage {

/** Monotonic wall-clock timer. Starts running on construction. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart the timer at zero. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Microseconds elapsed since construction or the last reset(). */
    double elapsedMicros() const { return elapsedSeconds() * 1e6; }

    /** Milliseconds elapsed since construction or the last reset(). */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

    /** Nanoseconds elapsed since construction or the last reset(). */
    double elapsedNanos() const { return elapsedSeconds() * 1e9; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace cottage

#endif // COTTAGE_UTIL_STOPWATCH_H
