#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

namespace cottage {
namespace {

/**
 * Which queue the current thread owns, if it is a pool worker. Lets
 * submissions from inside a task land on the submitter's own deque
 * (LIFO locality) and lets tryRunOne() start its steal scan there.
 */
thread_local const ThreadPool *tlsPool = nullptr;
thread_local std::size_t tlsQueue = 0;

} // namespace

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("COTTAGE_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? defaultThreads() : threads)
{
    if (threads_ <= 1)
        return; // inline mode: no queues, no workers
    queues_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::post(Task task)
{
    // A worker pushes onto its own deque; outside threads round-robin.
    std::size_t target;
    if (tlsPool == this)
        target = tlsQueue;
    else
        target = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
                 queues_.size();
    {
        MutexLock lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    wake_.notify_one();
}

bool
ThreadPool::popOwn(std::size_t self, Task &task)
{
    Queue &queue = *queues_[self];
    MutexLock lock(queue.mutex);
    if (queue.tasks.empty())
        return false;
    task = std::move(queue.tasks.back());
    queue.tasks.pop_back();
    return true;
}

bool
ThreadPool::stealFrom(std::size_t victim, Task &task)
{
    Queue &queue = *queues_[victim];
    MutexLock lock(queue.mutex);
    if (queue.tasks.empty())
        return false;
    task = std::move(queue.tasks.front());
    queue.tasks.pop_front();
    return true;
}

bool
ThreadPool::tryRunOne()
{
    if (queues_.empty() || pending_.load(std::memory_order_acquire) == 0)
        return false;
    const std::size_t start = tlsPool == this ? tlsQueue : 0;
    Task task;
    bool found = false;
    if (tlsPool == this && popOwn(start, task)) {
        found = true;
    } else {
        for (std::size_t i = 0; i < queues_.size() && !found; ++i)
            found = stealFrom((start + i) % queues_.size(), task);
    }
    if (!found)
        return false;
    pending_.fetch_sub(1, std::memory_order_release);
    task();
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    tlsPool = this;
    tlsQueue = self;
    while (true) {
        if (tryRunOne())
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex_);
        wake_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0)
            return;
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    if (threads_ <= 1 || count == 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    // Contiguous chunks, a few per worker so uneven bodies balance
    // through stealing without drowning the queues in tiny tasks.
    const std::size_t chunks =
        std::min<std::size_t>(count, static_cast<std::size_t>(threads_) * 4);
    const std::size_t chunkSize = (count + chunks - 1) / chunks;

    std::vector<std::exception_ptr> errors(chunks);
    std::atomic<std::size_t> remaining{chunks};

    auto runChunk = [&](std::size_t chunk) {
        const std::size_t lo = begin + chunk * chunkSize;
        const std::size_t hi = std::min(end, lo + chunkSize);
        try {
            for (std::size_t i = lo; i < hi; ++i)
                body(i);
        } catch (...) {
            errors[chunk] = std::current_exception();
        }
        remaining.fetch_sub(1, std::memory_order_release);
    };

    for (std::size_t chunk = 1; chunk < chunks; ++chunk)
        post([&runChunk, chunk] { runChunk(chunk); });
    runChunk(0);

    // Help drain the pool while the stolen chunks finish.
    while (remaining.load(std::memory_order_acquire) > 0) {
        if (!tryRunOne())
            std::this_thread::yield();
    }

    // Rethrow the lowest-indexed failure so the surfaced error does
    // not depend on scheduling.
    for (std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);
}

namespace {

Mutex globalPoolMutex;
std::unique_ptr<ThreadPool> globalPool COTTAGE_GUARDED_BY(globalPoolMutex);

} // namespace

ThreadPool &
ThreadPool::global()
{
    MutexLock lock(globalPoolMutex);
    if (!globalPool)
        globalPool = std::make_unique<ThreadPool>();
    return *globalPool;
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    MutexLock lock(globalPoolMutex);
    const unsigned desired = threads == 0 ? defaultThreads() : threads;
    if (globalPool && globalPool->threads() == desired)
        return;
    globalPool.reset(); // join the old pool before replacing it
    globalPool = std::make_unique<ThreadPool>(desired);
}

} // namespace cottage
