#include "harness/table.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace cottage {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    COTTAGE_CHECK_MSG(!headers_.empty(), "table needs columns");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    COTTAGE_CHECK_MSG(cells.size() == headers_.size(),
                      "row width must match header");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::cell(double value, int precision)
{
    return strformat("%.*f", precision, value);
}

std::string
TextTable::cell(uint64_t value)
{
    return strformat("%llu", static_cast<unsigned long long>(value));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    const auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::size_t totalWidth = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        totalWidth += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(totalWidth, '-');
    out += '\n';
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

} // namespace cottage
