#include "harness/experiment.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "core/cottage_isn_policy.h"
#include "core/cottage_without_ml_policy.h"
#include "engine/parallel_search.h"
#include "core/oracle_policy.h"
#include "core/slo_policy.h"
#include "index/bmm_evaluator.h"
#include "index/bmw_evaluator.h"
#include "index/exhaustive_evaluator.h"
#include "index/maxscore_evaluator.h"
#include "index/taat_evaluator.h"
#include "index/wand_evaluator.h"
#include "policy/exhaustive_policy.h"
#include "serve/arrivals.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cottage {

ExperimentConfig::ExperimentConfig()
{
    // Scaled-down corpus: 60K documents standing in for the paper's
    // 34M-doc Wikipedia dump (see DESIGN.md, substitution table).
    corpus.numDocs = 60000;
    corpus.vocabSize = 40000;
    corpus.meanDocLength = 160.0;
    corpus.numTopics = 64;
    corpus.seed = 42;

    shards.numShards = 16;
    shards.topK = 10;
    shards.partition = PartitionPolicy::Topical;
    shards.seed = 1;

    // The WorkModel defaults are already calibrated for this corpus
    // scale (see work_model.h).
}

ExperimentConfig
ExperimentConfig::fromFlags(const CliFlags &flags)
{
    ExperimentConfig config;
    config.corpus.numDocs = static_cast<uint32_t>(
        flags.getInt("docs", config.corpus.numDocs));
    config.corpus.vocabSize = static_cast<uint32_t>(
        flags.getInt("vocab", config.corpus.vocabSize));
    config.corpus.seed =
        static_cast<uint64_t>(flags.getInt("seed", config.corpus.seed));
    config.shards.numShards = static_cast<ShardId>(
        flags.getInt("shards", config.shards.numShards));
    config.shards.topK =
        static_cast<std::size_t>(flags.getInt("k", config.shards.topK));
    config.traceQueries = static_cast<uint64_t>(
        flags.getInt("queries", config.traceQueries));
    config.arrivalQps = flags.getDouble("qps", config.arrivalQps);
    config.traceSeed = static_cast<uint64_t>(
        flags.getInt("trace-seed", config.traceSeed));
    config.trainQueries = static_cast<uint64_t>(
        flags.getInt("train-queries", config.trainQueries));
    config.trainSeed = static_cast<uint64_t>(
        flags.getInt("train-seed", config.trainSeed));
    config.train.iterations = static_cast<std::size_t>(
        flags.getInt("iterations", config.train.iterations));
    config.cottage.budgetSlack =
        flags.getDouble("budget-slack", config.cottage.budgetSlack);
    config.cottage.participationThreshold = flags.getDouble(
        "participation-threshold", config.cottage.participationThreshold);
    config.cottage.halfThreshold =
        flags.getDouble("half-threshold", config.cottage.halfThreshold);
    config.taily.rankingDepth =
        flags.getDouble("taily-depth", config.taily.rankingDepth);
    config.taily.docCutoff =
        flags.getDouble("taily-cutoff", config.taily.docCutoff);
    config.power.busyWattsAtReference = flags.getDouble(
        "busy-watts", config.power.busyWattsAtReference);
    config.sloSeconds =
        flags.getDouble("slo-ms", config.sloSeconds * 1e3) * 1e-3;
    config.coresPerIsn = static_cast<uint32_t>(
        flags.getInt("cores-per-isn", config.coresPerIsn));
    // Operator-facing validation: a typo'd width or serial fraction
    // should print a usage hint, not dump core via an assertion.
    config.isnCores = static_cast<uint32_t>(
        getIntAtLeast(flags, "isn-cores", config.isnCores, 1));
    config.cottage.maxCoresPerQuery = config.isnCores;
    config.speedup.serialFraction = flags.getDouble(
        "speedup-serial-fraction", config.speedup.serialFraction);
    if (config.speedup.serialFraction < 0.0)
        cliError("flag --speedup-serial-fraction must be >= 0",
                 "--speedup-serial-fraction=A with 0 <= A (Amdahl "
                 "serial share)");
    config.cottage.isnPowerCapWatts = getPositiveDouble(
        flags, "isn-power-cap", config.cottage.isnPowerCapWatts);
    config.evaluator = flags.getString("evaluator", config.evaluator);
    config.shards.blockSize = static_cast<uint32_t>(
        flags.getInt("block-size", config.shards.blockSize));
    config.threads =
        static_cast<uint32_t>(flags.getInt("threads", config.threads));
    config.anytime = flags.getBool("anytime", config.anytime);
    config.traceOut = flags.getString("trace-out", config.traceOut);
    config.metricsOut = flags.getString("metrics-out", config.metricsOut);
    config.powerWindowSeconds =
        flags.getDouble("power-window-ms",
                        config.powerWindowSeconds * 1e3) *
        1e-3;
    config.serving.enabled =
        flags.getBool("serve", config.serving.enabled);
    config.serving.admission.shedBacklogSeconds =
        flags.getDouble("shed-backlog-ms",
                        config.serving.admission.shedBacklogSeconds *
                            1e3) *
        1e-3;
    config.serving.admission.degradeBacklogSeconds =
        flags.getDouble(
            "degrade-backlog-ms",
            config.serving.admission.degradeBacklogSeconds * 1e3) *
        1e-3;
    config.serving.admission.overloadBudgetSeconds =
        flags.getDouble(
            "overload-budget-ms",
            config.serving.admission.overloadBudgetSeconds * 1e3) *
        1e-3;
    // Cache capacities: 0 legitimately disables a cache, but a
    // negative value would wrap through the size_t cast into a
    // near-infinite capacity — catch it at the flag boundary.
    config.serving.resultCacheCapacity = static_cast<std::size_t>(
        getIntAtLeast(flags, "result-cache",
                      static_cast<int64_t>(
                          config.serving.resultCacheCapacity),
                      0));
    config.serving.statsCacheCapacity = static_cast<std::size_t>(
        getIntAtLeast(flags, "postings-cache",
                      static_cast<int64_t>(
                          config.serving.statsCacheCapacity),
                      0));
    return config;
}

void
ExperimentConfig::print(std::ostream &out) const
{
    out << strformat(
        "config: docs=%u vocab=%u shards=%u k=%zu queries=%llu qps=%.1f "
        "train-queries=%llu iterations=%zu corpus-seed=%llu "
        "trace-seed=%llu evaluator=%s block-size=%u threads=%u "
        "anytime=%d isn-cores=%u\n",
        corpus.numDocs, corpus.vocabSize, shards.numShards, shards.topK,
        static_cast<unsigned long long>(traceQueries), arrivalQps,
        static_cast<unsigned long long>(trainQueries), train.iterations,
        static_cast<unsigned long long>(corpus.seed),
        static_cast<unsigned long long>(traceSeed), evaluator.c_str(),
        shards.blockSize,
        threads == 0 ? ThreadPool::defaultThreads() : threads,
        anytime ? 1 : 0, isnCores);
}

std::unique_ptr<Evaluator>
Experiment::makeEvaluator(const std::string &name)
{
    if (name == "exhaustive")
        return std::make_unique<ExhaustiveEvaluator>();
    if (name == "taat")
        return std::make_unique<TaatEvaluator>();
    if (name == "maxscore")
        return std::make_unique<MaxScoreEvaluator>();
    if (name == "wand")
        return std::make_unique<WandEvaluator>();
    if (name == "bmw")
        return std::make_unique<BmwEvaluator>();
    if (name == "bmm")
        return std::make_unique<BmmEvaluator>();
    fatal("unknown evaluator: " + name);
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)), evaluator_(makeEvaluator(config_.evaluator))
{
    if (config_.threads > 0)
        ThreadPool::setGlobalThreads(config_.threads);
    Stopwatch watch;
    corpus_ = std::make_unique<Corpus>(Corpus::generate(config_.corpus));
    index_ = std::make_unique<ShardedIndex>(*corpus_, config_.shards);
    // Intra-query gangs need at least isnCores workers per ISN to be
    // dispatchable, so the wider of the two knobs wins.
    cluster_ = std::make_unique<ClusterSim>(
        config_.shards.numShards, FrequencyLadder(), config_.power,
        config_.network,
        std::max(config_.coresPerIsn, config_.isnCores));
    cluster_->setSpeedupCurve(config_.speedup);
    engine_ = std::make_unique<DistributedEngine>(*index_, *cluster_,
                                                  *evaluator_, config_.work,
                                                  config_.anytime);
    engine_->setDefaultIsnCores(config_.isnCores);
    logInfo(strformat("experiment stack built in %.1fs (%u docs, %u shards)",
                      watch.elapsedSeconds(), corpus_->numDocs(),
                      index_->numShards()));
}

Experiment::~Experiment() = default;

const PredictorBank &
Experiment::bank()
{
    if (!bank_) {
        Stopwatch watch;
        bank_ = std::make_unique<PredictorBank>(
            *index_, *evaluator_, config_.work, trainTrace(), config_.train);
        logInfo(strformat("predictor bank trained in %.1fs (%zu queries)",
                          watch.elapsedSeconds(),
                          static_cast<std::size_t>(config_.trainQueries)));

        // Parallel-work calibration: the latency predictor is trained
        // on sequential work, but a c-core traversal re-scores more
        // candidates (per-slice pruning thresholds warm up
        // independently). Measure the inflation on a training-query
        // prefix with the real parallel driver so the policy's grid
        // search stays conservative at every width it may pick.
        const uint32_t maxCores = std::max(
            config_.isnCores, config_.cottage.maxCoresPerQuery);
        if (maxCores > 1) {
            const QueryTrace &queries = trainTrace();
            const std::size_t sample =
                std::min<std::size_t>(queries.size(), 48);
            const ShardId numShards = index_->numShards();
            std::vector<std::vector<double>> perQuery(
                maxCores, std::vector<double>(sample, 0.0));
            for (uint32_t cores = 1; cores <= maxCores; ++cores) {
                std::vector<double> &cell = perQuery[cores - 1];
                ThreadPool::global().parallelFor(
                    0, sample, [&](std::size_t q) {
                        const std::vector<WeightedTerm> terms =
                            DistributedEngine::weightedTerms(
                                queries.query(q));
                        double cycles = 0.0;
                        for (ShardId s = 0; s < numShards; ++s)
                            cycles += config_.work.cycles(
                                parallelShardSearch(*evaluator_,
                                                    index_->shard(s),
                                                    terms,
                                                    index_->topK(),
                                                    noDocCap, cores)
                                    .work);
                        cell[q] = cycles;
                    });
            }
            // Conservative like the latency predictor's bucket upper
            // edges: the factor is the 90th-percentile per-query
            // inflation ratio, not the aggregate mean — the mean
            // under-predicts the heavy tail of queries whose per-slice
            // thresholds warm up slowest, and those are exactly the
            // ones a tight budget truncates.
            std::vector<double> factors(maxCores, 1.0);
            for (uint32_t cores = 2; cores <= maxCores; ++cores) {
                std::vector<double> ratios;
                ratios.reserve(sample);
                for (std::size_t q = 0; q < sample; ++q)
                    if (perQuery[0][q] > 0.0)
                        ratios.push_back(perQuery[cores - 1][q] /
                                         perQuery[0][q]);
                if (ratios.empty())
                    continue;
                std::sort(ratios.begin(), ratios.end(),
                          std::less<double>());
                const std::size_t idx =
                    (ratios.size() - 1) * 9 / 10;
                factors[cores - 1] = std::max(1.0, ratios[idx]);
            }
            bank_->setCoreCycleFactors(factors);
            logInfo(strformat(
                "core cycle factors calibrated over %zu queries "
                "(factor at %u cores: %.3f)",
                sample, maxCores, factors[maxCores - 1]));
        }
    }
    return *bank_;
}

const QueryTrace &
Experiment::trainTrace()
{
    if (!trainTrace_) {
        TraceConfig tc;
        tc.flavor = TraceFlavor::Wikipedia;
        tc.numQueries = config_.trainQueries;
        tc.vocabSize = config_.corpus.vocabSize;
        tc.arrivalQps = config_.arrivalQps;
        tc.seed = config_.trainSeed;
        trainTrace_ = std::make_unique<QueryTrace>(QueryTrace::generate(tc));
    }
    return *trainTrace_;
}

const QueryTrace &
Experiment::trace(TraceFlavor flavor)
{
    auto it = traces_.find(flavor);
    if (it == traces_.end()) {
        TraceConfig tc;
        tc.flavor = flavor;
        tc.numQueries = config_.traceQueries;
        tc.vocabSize = config_.corpus.vocabSize;
        tc.arrivalQps = config_.arrivalQps;
        tc.seed = config_.traceSeed + static_cast<uint64_t>(flavor);
        it = traces_.emplace(flavor, QueryTrace::generate(tc)).first;
    }
    return it->second;
}

const std::vector<std::vector<ScoredDoc>> &
Experiment::groundTruth(TraceFlavor flavor)
{
    auto it = truths_.find(flavor);
    if (it == truths_.end()) {
        Stopwatch watch;
        const QueryTrace &queryTrace = trace(flavor);
        // Each query's exhaustive top-K is independent: fan the trace
        // out over the pool, one dedicated slot per query. globalTopK
        // itself fans out over shards; nested parallelism is fine
        // because waiting pool threads help.
        std::vector<std::vector<ScoredDoc>> truth(queryTrace.size());
        ThreadPool::global().parallelFor(
            0, queryTrace.size(), [&](std::size_t q) {
                truth[q] = engine_->globalTopK(queryTrace.query(q));
            });
        it = truths_.emplace(flavor, std::move(truth)).first;
        logInfo(strformat("ground truth for %s built in %.1fs",
                          traceFlavorName(flavor), watch.elapsedSeconds()));
    }
    return it->second;
}

std::unique_ptr<Policy>
Experiment::makePolicy(const std::string &name)
{
    if (name == "exhaustive")
        return std::make_unique<ExhaustivePolicy>();
    if (name == "aggregation")
        return std::make_unique<AggregationPolicy>(config_.aggregation);
    if (name == "rank-s")
        return std::make_unique<RankSPolicy>(*corpus_, *index_,
                                             config_.rankS);
    if (name == "redde")
        return std::make_unique<ReddePolicy>(*corpus_, *index_,
                                             config_.redde);
    if (name == "taily")
        return std::make_unique<TailyPolicy>(*index_, config_.taily);
    if (name == "cottage")
        return std::make_unique<CottagePolicy>(bank(), config_.cottage);
    if (name == "cottage-isn")
        return std::make_unique<CottageIsnPolicy>(bank());
    if (name == "cottage-without-ml")
        return std::make_unique<CottageWithoutMlPolicy>(
            bank(), *index_, config_.cottage, config_.taily);
    if (name == "oracle")
        return std::make_unique<OraclePolicy>();
    if (name == "slo-dvfs")
        return std::make_unique<SloDvfsPolicy>(bank(), config_.sloSeconds);
    fatal("unknown policy: " + name);
}

RunResult
Experiment::run(Policy &policy, TraceFlavor flavor)
{
    const QueryTrace &queryTrace = trace(flavor);
    const auto &truth = groundTruth(flavor);

    cluster_->reset();
    policy.reset();

    // Observability: attach a fresh tracer/registry per run when the
    // config asks for them. Both hooks only observe — with traceOut
    // and metricsOut unset (the default) nothing is attached and the
    // replay is byte-identical to an uninstrumented build
    // (tests/test_parallel.cc proves it).
    std::shared_ptr<QueryTracer> tracer;
    if (!config_.traceOut.empty()) {
        tracer = std::make_shared<QueryTracer>();
        // Stream records to disk as they are produced (flushing per
        // batch) so a mid-run abort keeps every completed batch; the
        // file contents are byte-identical to the former end-of-run
        // dump, the lines just land incrementally.
        if (!traceFile_) {
            traceFile_ =
                std::make_unique<std::ofstream>(config_.traceOut);
            if (!*traceFile_)
                fatal("cannot open " + config_.traceOut);
        }
        tracer->streamTo(traceFile_.get(), policy.name(),
                         queryTrace.name());
        engine_->setTracer(tracer.get());
    }
    std::shared_ptr<MetricsRegistry> metrics;
    if (!config_.metricsOut.empty()) {
        metrics = std::make_shared<MetricsRegistry>();
        metrics->configureWindows(config_.powerWindowSeconds,
                                  config_.power.idleWatts);
        engine_->setMetrics(metrics.get());
    }

    // Replay determinism contract: queries advance the cluster-sim
    // strictly in arrival order (plans may read backlog state left by
    // earlier queries), while each execute() fans its per-shard
    // retrieval out over the pool. Parallelism lives entirely inside
    // the pure retrieval phase, so the measured latency/energy stream
    // is bit-identical at any thread count (tests/test_parallel.cc).
    RunResult result;
    result.measurements.reserve(queryTrace.size());
    double energyBefore = 0.0;
    for (std::size_t q = 0; q < queryTrace.size(); ++q) {
        const Query &query = queryTrace.query(q);
        const QueryPlan plan = policy.plan(query, *engine_);
        QueryMeasurement measurement =
            engine_->execute(query, plan, truth[q]);
        if (metrics) {
            // Energy per window: the busy energy this query's
            // execution added, attributed to its arrival window.
            const double energyAfter = cluster_->totalEnergyJoules();
            metrics->addWindowSample(query.arrivalSeconds,
                                     energyAfter - energyBefore);
            energyBefore = energyAfter;
        }
        policy.observe(measurement);
        result.measurements.push_back(std::move(measurement));
    }
    engine_->setTracer(nullptr);
    engine_->setMetrics(nullptr);

    result.summary = summarizeRun(policy.name(), queryTrace.name(),
                                  result.measurements);
    // The power window runs until the last ISN drains.
    double window = queryTrace.durationSeconds();
    for (ShardId s = 0; s < cluster_->numIsns(); ++s)
        window = std::max(window, cluster_->isn(s).busyUntilSeconds());
    result.summary.durationSeconds = window;
    result.summary.energyJoules = cluster_->totalEnergyJoules();
    result.summary.avgPowerWatts = cluster_->averagePowerWatts(window);

    if (tracer) {
        tracer->flushSink();
        tracer->streamTo(nullptr, "", "");
        result.trace = std::move(tracer);
    }
    if (metrics) {
        // End-of-run cluster state: per-ISN utilisation over the
        // replay window and the per-ISN energy split.
        Histogram &utilisation =
            metrics->histogram("isn_utilization", 0.0, 1.0, 20, false);
        for (ShardId s = 0; s < cluster_->numIsns(); ++s)
            utilisation.add(cluster_->isn(s).busySeconds() / window);
        if (!metricsFile_) {
            metricsFile_ =
                std::make_unique<std::ofstream>(config_.metricsOut);
            if (!*metricsFile_)
                fatal("cannot open " + config_.metricsOut);
        }
        *metricsFile_ << metrics->toJson(result.summary.policy,
                                         result.summary.trace)
                      << '\n';
        metricsFile_->flush();
        result.metrics = std::move(metrics);
    }
    return result;
}

RunResult
Experiment::run(const std::string &policyName, TraceFlavor flavor)
{
    const std::unique_ptr<Policy> policy = makePolicy(policyName);
    return run(*policy, flavor);
}

ServingRunResult
Experiment::runServing(Policy &policy, TraceFlavor flavor,
                       double offeredQps)
{
    // Ground truth is computed on the base trace; the re-timed trace
    // keeps query content and positions, so truth stays aligned.
    const auto &truth = groundTruth(flavor);
    const QueryTrace served =
        retimeTrace(trace(flavor), offeredQps, config_.serving.retimeSeed);

    ServingFrontEnd frontEnd(*engine_, config_.serving);
    std::shared_ptr<MetricsRegistry> metrics;
    if (!config_.metricsOut.empty()) {
        metrics = std::make_shared<MetricsRegistry>();
        metrics->configureWindows(config_.powerWindowSeconds,
                                  config_.power.idleWatts);
    }

    ServingRunResult result;
    result.summary = frontEnd.serve(policy, served, truth, metrics.get());
    result.measurements = frontEnd.measurements();

    if (metrics) {
        if (!metricsFile_) {
            metricsFile_ =
                std::make_unique<std::ofstream>(config_.metricsOut);
            if (!*metricsFile_)
                fatal("cannot open " + config_.metricsOut);
        }
        *metricsFile_ << metrics->toJson(result.summary.run.policy,
                                         result.summary.run.trace)
                      << '\n';
        metricsFile_->flush();
        result.metrics = std::move(metrics);
    }
    return result;
}

ServingRunResult
Experiment::runServing(const std::string &policyName, TraceFlavor flavor,
                       double offeredQps)
{
    const std::unique_ptr<Policy> policy = makePolicy(policyName);
    return runServing(*policy, flavor, offeredQps);
}

ScenarioRunResult
Experiment::runScenario(Policy &policy, const ScenarioConfig &scenario)
{
    COTTAGE_CHECK_MSG(!scenario.tenants.empty(),
                      "a scenario needs at least one tenant");

    // Shape each tenant's base trace under its private arrival spec,
    // then merge in the fixed (arrival, tenant, id) order.
    std::vector<QueryTrace> shaped;
    shaped.reserve(scenario.tenants.size());
    for (const TenantSpec &tenant : scenario.tenants)
        shaped.push_back(
            shapeArrivals(trace(tenant.flavor), tenant.arrivals));
    MergedArrivals merged = mergeTenantArrivals(shaped);
    merged.trace.setName("scenario:" + scenario.name);

    // Merged ground truth indexed by merged position: shaping keeps
    // base-trace positions, so each source (tenant, position) maps
    // straight into that flavor's cached truth.
    std::vector<std::vector<ScoredDoc>> truth;
    truth.reserve(merged.sources.size());
    for (const auto &source : merged.sources) {
        const TraceFlavor flavor = scenario.tenants[source.first].flavor;
        truth.push_back(groundTruth(flavor)[source.second]);
    }

    ServingConfig serving = config_.serving;
    serving.enabled = true;
    serving.tenants.clear();
    for (const TenantSpec &tenant : scenario.tenants) {
        TenantSlo slo = tenant.slo;
        slo.name = tenant.name;
        serving.tenants.push_back(std::move(slo));
    }

    ServingFrontEnd frontEnd(*engine_, serving);
    std::shared_ptr<MetricsRegistry> metrics;
    if (!config_.metricsOut.empty()) {
        metrics = std::make_shared<MetricsRegistry>();
        metrics->configureWindows(config_.powerWindowSeconds,
                                  config_.power.idleWatts);
    }

    // Hostile shape on, serve, shape off: the shape models hardware,
    // so it must survive the front-end's cluster reset but never leak
    // into later runs.
    cluster_->applyShape(scenario.shape);
    ScenarioRunResult result;
    result.summary =
        frontEnd.serve(policy, merged.trace, truth, metrics.get());
    result.measurements = frontEnd.measurements();
    cluster_->clearShape();

    if (metrics) {
        if (!metricsFile_) {
            metricsFile_ =
                std::make_unique<std::ofstream>(config_.metricsOut);
            if (!*metricsFile_)
                fatal("cannot open " + config_.metricsOut);
        }
        *metricsFile_ << metrics->toJson(result.summary.run.policy,
                                         result.summary.run.trace)
                      << '\n';
        metricsFile_->flush();
        result.metrics = std::move(metrics);
    }
    return result;
}

ScenarioRunResult
Experiment::runScenario(const std::string &policyName,
                        const ScenarioConfig &scenario)
{
    const std::unique_ptr<Policy> policy = makePolicy(policyName);
    return runScenario(*policy, scenario);
}

} // namespace cottage
