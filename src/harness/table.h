/**
 * @file
 * Fixed-width ASCII table printer used by the bench harnesses to emit
 * the paper's figure/table rows.
 */

#ifndef COTTAGE_HARNESS_TABLE_H
#define COTTAGE_HARNESS_TABLE_H

#include <string>
#include <vector>

namespace cottage {

/** Column-aligned text table. */
class TextTable
{
  public:
    /** Define the header row. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string cell(double value, int precision = 3);
    static std::string cell(uint64_t value);

    /** Render with padding and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cottage

#endif // COTTAGE_HARNESS_TABLE_H
