/**
 * @file
 * The experiment harness: one object that owns the whole reproduction
 * stack (corpus -> shards -> cluster -> engine -> predictors ->
 * policies) and replays query traces through it. Every bench binary
 * and example builds on this.
 */

#ifndef COTTAGE_HARNESS_EXPERIMENT_H
#define COTTAGE_HARNESS_EXPERIMENT_H

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cottage_policy.h"
#include "engine/distributed_engine.h"
#include "index/evaluator.h"
#include "metrics/run_stats.h"
#include "obs/metrics_registry.h"
#include "obs/query_tracer.h"
#include "policy/aggregation_policy.h"
#include "policy/rank_s_policy.h"
#include "policy/redde_policy.h"
#include "policy/taily_policy.h"
#include "predict/training.h"
#include "serve/scenario.h"
#include "serve/serving.h"
#include "shard/sharded_index.h"
#include "sim/cluster.h"
#include "text/corpus.h"
#include "text/trace.h"
#include "util/cli.h"

namespace cottage {

/** Every knob of a reproduction run, with scaled defaults. */
struct ExperimentConfig
{
    /** Synthetic corpus (default: 60K docs standing in for 34M). */
    CorpusConfig corpus;

    /** Sharding (paper: 16 ISNs, K = 10). */
    ShardedIndexConfig shards;

    /** Evaluation trace length (paper: 10K queries / 1000 s). */
    uint64_t traceQueries = 10000;

    /**
     * Open-loop arrival rate, queries per second. The default drives
     * the 16-ISN cluster to ~40% utilization under exhaustive search —
     * the regime where the replay reproduces the paper's operating
     * points (exhaustive ~13 ms average, ~42 ms p95, ~36 W package).
     */
    double arrivalQps = 350.0;

    /** Seed of the evaluation traces. */
    uint64_t traceSeed = 7;

    /** Training trace length for the predictor bank. */
    uint64_t trainQueries = 2500;

    /** Seed of the training trace (distinct from evaluation). */
    uint64_t trainSeed = 1007;

    /** Predictor training hyper-parameters. */
    PredictorTrainConfig train;

    /** Work-to-cycles cost model. */
    WorkModel work;

    /** Cluster power/network models. */
    PowerModel power;
    NetworkModel network;

    /** Worker cores per ISN. */
    uint32_t coresPerIsn = 1;

    /**
     * Intra-query parallelism (--isn-cores): cores each ISN spans per
     * request by default, and the widest gang Cottage's (cores x
     * frequency) grid may assign (CottageConfig::maxCoresPerQuery
     * follows this flag). 1 (default) is the paper's sequential ISN,
     * byte for byte. Values > 1 implicitly raise coresPerIsn so the
     * gang fits.
     */
    uint32_t isnCores = 1;

    /**
     * Sublinear intra-query speedup curve S(k) installed on every ISN,
     * covering the uncounted parallel overhead (merge, dispatch,
     * imbalance); the counted overhead is in the work counters
     * themselves. Calibrate serialFraction from
     * BENCH_parallelism.json's fitted alpha.
     */
    SpeedupCurve speedup;

    /**
     * Retrieval strategy every ISN runs: "exhaustive", "taat",
     * "maxscore" (default), "wand", or the block-max variants "bmw"
     * (Block-Max WAND) and "bmm" (Block-Max MaxScore). All are
     * rank-safe, so the measured quality is identical; only the work
     * (and therefore the simulated latency/energy) differs.
     */
    std::string evaluator = "maxscore";

    /**
     * Host worker threads for the parallel shard fan-out and the
     * harness's batch loops (--threads). 0 keeps the current global
     * pool (default: hardware concurrency); 1 is the sequential
     * baseline. This knob changes wall-clock only: every measured
     * quantity is bit-identical at any thread count (see DESIGN.md,
     * "Threading model").
     */
    uint32_t threads = 0;

    /**
     * Anytime partial results (--anytime): a deadline-missing ISN
     * returns its best-so-far top-K, with work prorated to the
     * completed service fraction. Off reverts to the drop-whole-
     * response degradation model (for comparison experiments only).
     */
    bool anytime = true;

    /**
     * Per-query trace output (--trace-out): when non-empty, every
     * run appends one JSONL record per executed query (aggregator
     * timeline + per-ISN spans, schema in EXPERIMENTS.md) to this
     * file, and RunResult::trace carries the in-memory records.
     * Empty (default) leaves the tracer detached: the replay is
     * byte-identical to an uninstrumented build.
     */
    std::string traceOut;

    /**
     * Per-run metrics output (--metrics-out): when non-empty, every
     * run appends one JSON object (counters, histograms, windowed
     * power/QPS series) to this file, and RunResult::metrics carries
     * the registry. Empty (default) disables all metric recording.
     */
    std::string metricsOut;

    /**
     * Window width of the metrics power/QPS time series
     * (--power-window-ms; seconds here, default 100 ms).
     */
    double powerWindowSeconds = 0.1;

    /** Baseline policy knobs. */
    TailyConfig taily;
    RankSConfig rankS;
    ReddeConfig redde;
    AggregationPolicyConfig aggregation;

    /** Cottage knobs. */
    CottageConfig cottage;

    /**
     * Serving-mode front-end knobs (--serve, --shed-backlog-ms,
     * --degrade-backlog-ms, --overload-budget-ms, --result-cache,
     * --postings-cache). Disabled by default: runServing() is the only
     * consumer, run() never constructs the front-end, so plain replay
     * stays byte-identical whatever these are set to.
     */
    ServingConfig serving;

    /**
     * Fixed deadline of the slo-dvfs baseline (the "budget given a
     * priori" regime of prior power-management work).
     */
    double sloSeconds = 20e-3;

    ExperimentConfig();

    /**
     * Apply command-line overrides (--docs=, --shards=, --queries=,
     * --qps=, --trace-seed=, --train-queries=, --train-seed=,
     * --iterations=, --seed=, --trace-out=, --metrics-out=,
     * --power-window-ms=, ...). --seed reseeds the corpus only;
     * --trace-seed/--train-seed vary the replay and training traces
     * independently.
     */
    static ExperimentConfig fromFlags(const CliFlags &flags);

    /** Echo the knobs that matter for reproducibility. */
    void print(std::ostream &out) const;
};

/** One policy's replay output. */
struct RunResult
{
    std::vector<QueryMeasurement> measurements;
    RunSummary summary;

    /**
     * Per-query trace records of the run (null unless the experiment
     * was configured with traceOut). Shared so results stay copyable.
     */
    std::shared_ptr<const QueryTracer> trace;

    /**
     * The run's metrics registry (null unless metricsOut was set):
     * engine counters/histograms plus the harness's per-ISN
     * utilisation histogram and windowed power/QPS series.
     */
    std::shared_ptr<const MetricsRegistry> metrics;
};

/** One policy's serving-mode output. */
struct ServingRunResult
{
    ServingSummary summary;
    std::vector<ServingMeasurement> measurements;

    /** The run's metrics registry (null unless metricsOut was set). */
    std::shared_ptr<const MetricsRegistry> metrics;
};

/**
 * One policy's scenario output. The summary's tenants vector carries
 * the per-tenant rollups (latency percentiles, SLO attainment, shed
 * rate, quality, energy).
 */
struct ScenarioRunResult
{
    ServingSummary summary;
    std::vector<ServingMeasurement> measurements;

    /** The run's metrics registry (null unless metricsOut was set). */
    std::shared_ptr<const MetricsRegistry> metrics;
};

/**
 * Owns and lazily builds the full stack. Heavy pieces (corpus, index,
 * ground truth, predictor bank) are constructed once and reused across
 * policies so comparative benches stay fast.
 */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig config = {});
    ~Experiment();

    const ExperimentConfig &config() const { return config_; }
    const Corpus &corpus() const { return *corpus_; }
    const ShardedIndex &index() const { return *index_; }
    ClusterSim &cluster() { return *cluster_; }
    DistributedEngine &engine() { return *engine_; }
    const Evaluator &evaluator() const { return *evaluator_; }

    /**
     * Instantiate a retrieval strategy by name: exhaustive, taat,
     * maxscore, wand. Fatal on an unknown name.
     */
    static std::unique_ptr<Evaluator>
    makeEvaluator(const std::string &name);

    /** The trained per-ISN predictor bank (built on first use). */
    const PredictorBank &bank();

    /** The cached evaluation trace of a flavor. */
    const QueryTrace &trace(TraceFlavor flavor);

    /** The training trace (distinct seed and queries). */
    const QueryTrace &trainTrace();

    /** Cached exhaustive ground truth of an evaluation trace. */
    const std::vector<std::vector<ScoredDoc>> &
    groundTruth(TraceFlavor flavor);

    /**
     * Instantiate a policy by name: exhaustive, aggregation, rank-s,
     * redde, taily, cottage, cottage-isn, cottage-without-ml, oracle,
     * slo-dvfs. Fatal on an unknown name.
     */
    std::unique_ptr<Policy> makePolicy(const std::string &name);

    /**
     * Replay a flavor's evaluation trace under a policy, resetting
     * cluster and policy state first. Fills the summary including
     * energy/power over the replay window.
     */
    RunResult run(Policy &policy, TraceFlavor flavor);

    /** run() with a policy freshly made by name. */
    RunResult run(const std::string &policyName, TraceFlavor flavor);

    /**
     * Serve a flavor's evaluation trace through the serving front-end
     * (admission control, caches, shedding; config_.serving) at an
     * offered Poisson rate of @p offeredQps. The trace is re-timed
     * (serve/arrivals.h) so query content — and therefore the cached
     * ground truth — matches replay mode exactly; only arrivals move.
     */
    ServingRunResult runServing(Policy &policy, TraceFlavor flavor,
                                double offeredQps);

    /** runServing() with a policy freshly made by name. */
    ServingRunResult runServing(const std::string &policyName,
                                TraceFlavor flavor, double offeredQps);

    /**
     * Serve a multi-tenant scenario (serve/scenario.h): shape each
     * tenant's flavor trace under its private arrival seed, merge the
     * streams in the fixed (arrival, tenant, id) order, apply the
     * scenario's hostile cluster shape, and run the serving front-end
     * with the tenants' SLO classes attached. The cluster shape is
     * cleared before returning, so subsequent runs see a pristine
     * cluster. Serving-mode knobs other than `enabled` and `tenants`
     * come from config_.serving as usual.
     */
    ScenarioRunResult runScenario(Policy &policy,
                                  const ScenarioConfig &scenario);

    /** runScenario() with a policy freshly made by name. */
    ScenarioRunResult runScenario(const std::string &policyName,
                                  const ScenarioConfig &scenario);

  private:
    ExperimentConfig config_;
    std::unique_ptr<Evaluator> evaluator_;
    std::unique_ptr<Corpus> corpus_;
    std::unique_ptr<ShardedIndex> index_;
    std::unique_ptr<ClusterSim> cluster_;
    std::unique_ptr<DistributedEngine> engine_;
    std::unique_ptr<PredictorBank> bank_;
    std::unique_ptr<QueryTrace> trainTrace_;
    std::map<TraceFlavor, QueryTrace> traces_;
    std::map<TraceFlavor, std::vector<std::vector<ScoredDoc>>> truths_;

    /** Observability sinks, opened (truncating) on the first run. */
    std::unique_ptr<std::ofstream> traceFile_;
    std::unique_ptr<std::ofstream> metricsFile_;
};

} // namespace cottage

#endif // COTTAGE_HARNESS_EXPERIMENT_H
