/**
 * @file
 * DVFS frequency ladder, mirroring the paper's testbed: ACPI P-states
 * from 1.2 GHz to 2.7 GHz with per-core frequency selection, 2.7 GHz
 * being the boost target.
 */

#ifndef COTTAGE_SIM_FREQUENCY_H
#define COTTAGE_SIM_FREQUENCY_H

#include <vector>

namespace cottage {

/** A discrete set of selectable core frequencies (GHz, ascending). */
class FrequencyLadder
{
  public:
    /**
     * Default ladder: 1.2 to 2.7 GHz in 0.1 GHz steps (the paper's
     * Xeon E5-2697 range), default operating point 2.1 GHz.
     */
    FrequencyLadder();

    /** Custom ladder; steps must be positive and strictly ascending. */
    FrequencyLadder(std::vector<double> stepsGhz, double defaultGhz);

    double minGhz() const { return steps_.front(); }
    double maxGhz() const { return steps_.back(); }

    /** Normal (non-boosted) operating frequency. */
    double defaultGhz() const { return default_; }

    const std::vector<double> &steps() const { return steps_; }

    /**
     * Smallest ladder frequency >= the requested one (saturates to the
     * maximum). This is how a power governor picks the slowest
     * budget-meeting P-state.
     */
    double atLeast(double freqGhz) const;

    /**
     * Largest ladder frequency <= the requested one (saturates to the
     * minimum). Used to clamp a plan's frequency to a per-ISN cap on
     * heterogeneous hardware: the node runs the fastest P-state it
     * actually has.
     */
    double atMost(double freqGhz) const;

    /** True if the frequency is (numerically) one of the steps. */
    bool contains(double freqGhz) const;

  private:
    std::vector<double> steps_;
    double default_;
};

} // namespace cottage

#endif // COTTAGE_SIM_FREQUENCY_H
