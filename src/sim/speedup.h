/**
 * @file
 * Intra-query parallel speedup curve.
 *
 * When an ISN spreads one query's traversal over k cores (the
 * engine's parallelShardSearch), service time does not divide by k:
 * the merge, the pool round-trip and slice imbalance stay serial.
 * The sublinear curve here is Amdahl-form, S(k) = k / (1 + a(k-1)),
 * with the serial fraction `a` calibrated against the measured
 * parallel driver (bench_parallelism; see BENCH_parallelism.json's
 * fitted_alpha per evaluator). Note the cycle count fed to the
 * simulator already includes the counted parallel overhead — each
 * slice's pruning threshold warms up independently, so a k-slice run
 * reports more work than a sequential one. S(k) covers only the
 * UNcounted overhead on top of that.
 */

#ifndef COTTAGE_SIM_SPEEDUP_H
#define COTTAGE_SIM_SPEEDUP_H

#include <cstdint>

namespace cottage {

/** Amdahl-style sublinear speedup for k-core query execution. */
struct SpeedupCurve
{
    /**
     * Serial fraction of a parallel traversal: the share of its
     * wall time that does not scale with cores (merge, dispatch,
     * slice imbalance). Default calibrated from bench_parallelism's
     * measured bmw/wand speedups at 4 cores on the smoke corpus.
     */
    double serialFraction = 0.08;

    /** S(k): how much faster k cores finish one query. S(1) = 1. */
    double
    speedup(uint32_t cores) const
    {
        if (cores <= 1)
            return 1.0;
        const double k = static_cast<double>(cores);
        return k / (1.0 + serialFraction * (k - 1.0));
    }
};

} // namespace cottage

#endif // COTTAGE_SIM_SPEEDUP_H
