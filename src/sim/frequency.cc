#include "sim/frequency.h"

#include <cmath>

#include "util/logging.h"

namespace cottage {

FrequencyLadder::FrequencyLadder()
{
    for (int step = 12; step <= 27; ++step)
        steps_.push_back(static_cast<double>(step) / 10.0);
    default_ = 2.1;
}

FrequencyLadder::FrequencyLadder(std::vector<double> stepsGhz,
                                 double defaultGhz)
    : steps_(std::move(stepsGhz)), default_(defaultGhz)
{
    COTTAGE_CHECK_MSG(!steps_.empty(), "frequency ladder needs steps");
    for (std::size_t i = 0; i < steps_.size(); ++i) {
        COTTAGE_CHECK_MSG(steps_[i] > 0.0, "frequencies must be positive");
        if (i > 0)
            COTTAGE_CHECK_MSG(steps_[i - 1] < steps_[i],
                              "frequency ladder must ascend");
    }
    COTTAGE_CHECK_MSG(contains(defaultGhz),
                      "default frequency must be a ladder step");
}

double
FrequencyLadder::atLeast(double freqGhz) const
{
    for (double step : steps_) {
        if (step >= freqGhz - 1e-12)
            return step;
    }
    return steps_.back();
}

double
FrequencyLadder::atMost(double freqGhz) const
{
    for (std::size_t i = steps_.size(); i-- > 0;) {
        if (steps_[i] <= freqGhz + 1e-12)
            return steps_[i];
    }
    return steps_.front();
}

bool
FrequencyLadder::contains(double freqGhz) const
{
    for (double step : steps_) {
        if (std::fabs(step - freqGhz) < 1e-9)
            return true;
    }
    return false;
}

} // namespace cottage
