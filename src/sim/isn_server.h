/**
 * @file
 * Simulated ISN server: a FIFO work queue in front of one worker core
 * with per-request frequency selection, deadline-bounded execution and
 * energy accounting.
 *
 * Queries are dispatched in arrival order (open-loop replay), so the
 * queue is simulated chronologically: the server tracks when its core
 * frees up, and each execution is start/finish interval arithmetic.
 * This models exactly what the paper's Eq. (2) "equivalent latency"
 * captures — queueing backlog plus frequency-scaled service time.
 */

#ifndef COTTAGE_SIM_ISN_SERVER_H
#define COTTAGE_SIM_ISN_SERVER_H

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/frequency.h"
#include "sim/power_model.h"
#include "sim/speedup.h"

namespace cottage {

/** A scheduled outage: the ISN rejects dispatch in [from, to). */
struct DownWindow
{
    double fromSeconds = 0.0;
    double toSeconds = 0.0;
};

/** Outcome of one simulated request execution on an ISN. */
struct IsnExecution
{
    /** When the core started the request (>= arrival). */
    double startSeconds = 0.0;

    /** When the core finished or was cut off. */
    double finishSeconds = 0.0;

    /** Seconds actually spent computing. */
    double busySeconds = 0.0;

    /** True if the full service completed before the deadline. */
    bool completed = false;

    /**
     * Fraction of the requested service performed before the cutoff:
     * 1.0 when completed, busySeconds / full-service otherwise (0.0
     * when the deadline expired before the queue drained). Derived
     * purely from simulated time, so it is bit-identical at any host
     * thread count — the engine converts it into an anytime docs cap.
     */
    double completedFraction = 1.0;

    /** Frequency the request ran at (GHz). */
    double freqGhz = 0.0;

    /** Cores the request occupied for its busy interval. */
    uint32_t cores = 1;

    /**
     * Busy energy this request drew, joules: busySeconds at the
     * McPAT-style active power (uncore + cores * per-core dynamic),
     * scaled by the node's power shape. Computed here so every
     * consumer (span, meters, rollups) reads ONE number instead of
     * re-deriving it.
     */
    double energyJoules = 0.0;
};

/** One ISN's simulated queue, worker cores, DVFS state and meter. */
class IsnServerSim
{
  public:
    /**
     * @param workers Worker cores serving this ISN's queue (the
     *        paper's testbed runs 16 ISNs on a 24-core server; more
     *        workers per ISN shorten queueing, not service).
     */
    IsnServerSim(const FrequencyLadder &ladder, const PowerModel &power,
                 uint32_t workers = 1);

    /**
     * Execute a request.
     *
     * @param arrivalSeconds Dispatch time at the ISN.
     * @param cycles Total compute cycles the request needs.
     * @param freqGhz Core frequency for this request (a ladder step).
     * @param deadlineSeconds Absolute cutoff; infinity for none. Work
     *        past the deadline is abandoned (the paper's step 6: ISNs
     *        complete within the budget), so a request that cannot
     *        finish is truncated and marked incomplete.
     * @param cores Worker cores the request spans (intra-query
     *        parallelism). Must not exceed workers(). The request
     *        waits for @p cores workers to free up, its service time
     *        divides by the sublinear speedup S(cores), and its power
     *        is the McPAT-style split P_static + cores * P_dyn(f).
     *        cores = 1 is byte-identical to the pre-parallel model.
     */
    IsnExecution execute(double arrivalSeconds, double cycles, double freqGhz,
                         double deadlineSeconds, uint32_t cores = 1);

    /**
     * Seconds a request arriving now would wait before a worker frees
     * up (0 when some worker is idle).
     */
    double backlogSeconds(double nowSeconds) const;

    /**
     * Seconds a @p cores gang arriving now would wait before it can
     * start: a gang occupies the @p cores workers that free up first,
     * so it starts when the cores-th earliest busyUntil passes (see
     * execute()). cores = 1 equals backlogSeconds(now). The budget
     * algorithm must use this per-core-count backlog — predicting a
     * gang's start from the single-core backlog underestimates its
     * queueing whenever fewer than @p cores workers sit idle.
     */
    double backlogSeconds(double nowSeconds, uint32_t cores) const;

    /** When the last worker drains (the power/energy window edge). */
    double busyUntilSeconds() const;

    /** Worker cores serving this ISN. */
    uint32_t workers() const { return static_cast<uint32_t>(
        workerBusyUntil_.size()); }

    /** Total busy-interval energy consumed, joules. */
    double energyJoules() const { return energyJoules_; }

    /**
     * Total core-busy-seconds spent computing (a k-core request
     * contributes k times its wall busy interval; single-core
     * requests are unchanged).
     */
    double busySeconds() const { return busySeconds_; }

    /** The sublinear intra-query speedup curve S(k). */
    const SpeedupCurve &speedupCurve() const { return speedup_; }
    void setSpeedupCurve(const SpeedupCurve &curve) { speedup_ = curve; }

    /** Requests executed (including truncated ones). */
    uint64_t requestsServed() const { return requestsServed_; }

    /** Requests that missed their deadline (truncated). */
    uint64_t requestsTruncated() const { return requestsTruncated_; }

    /**
     * Truncated requests whose deadline expired before service even
     * started (busySeconds == 0, completedFraction == 0): the queue
     * never drained, so the ISN performed no work and responded with
     * nothing. A subset of requestsTruncated() — kept separate so a
     * serving front-end can tell genuine mid-service anytime partials
     * apart from zero-progress abandons when reporting shed/overload
     * statistics. Not part of any replay-mode JSON output, so adding
     * it leaves every measured byte unchanged.
     */
    uint64_t requestsZeroProgress() const { return requestsZeroProgress_; }

    /** Sticky operating frequency used when a policy does not pick. */
    double currentFreqGhz() const { return currentFreq_; }
    void setCurrentFreqGhz(double freqGhz);

    // ------------------------------------------------- hostile shapes
    // Scenario-layer hardware traits: stragglers, heterogeneous
    // frequency ceilings and scheduled outages. Shape is hardware, not
    // run state — reset() clears queues and meters but keeps the
    // shape; clearShape() restores a pristine node.

    /**
     * Scale this node's service rate: service time divides by the
     * multiplier, so 0.5 models a straggler running at half speed and
     * 2.0 a node twice as fast as the fleet baseline.
     */
    void setServiceRateMultiplier(double multiplier);
    double serviceRateMultiplier() const { return serviceRate_; }

    /**
     * Cap the node's frequency: requests asking for more run at the
     * highest ladder step <= the cap instead (heterogeneous hardware —
     * the plan's P-state simply does not exist on this node). The
     * execution reports the frequency actually used.
     */
    void setMaxFreqGhz(double freqGhz);
    double maxFreqGhz() const { return maxFreq_; }

    /**
     * Schedule outages; windows must be well-formed (from < to) and
     * strictly ascending. Admission consults availableAt() and drops
     * down ISNs from the plan; work already queued drains normally —
     * a failure loses the node, not the physics of its queue.
     */
    void setDownWindows(std::vector<DownWindow> windows);
    const std::vector<DownWindow> &downWindows() const { return down_; }

    /**
     * Scale this node's dynamic (per-core busy) power: > 1 models an
     * inefficient part drawing more joules for the same work, < 1 a
     * binned-efficient one. Applied to every busy interval's energy;
     * 1.0 (the default) leaves each measured byte unchanged.
     */
    void setBusyPowerScale(double scale);
    double busyPowerScale() const { return busyPowerScale_; }

    /**
     * Extra static power this node draws on top of the fleet's
     * per-package idle floor, watts (an old part, a failing fan).
     * Pure reporting: it feeds the cluster's average-power rollup,
     * never the energy meter or any per-request accounting.
     */
    void setIdlePowerExtraWatts(double watts);
    double idlePowerExtraWatts() const { return idlePowerExtra_; }

    /** False while the node sits inside a scheduled down window. */
    bool availableAt(double nowSeconds) const;

    /** Restore pristine hardware traits (no straggling/cap/outages). */
    void clearShape();

    /** Clear all queue/energy state (fresh experiment). */
    void reset();

    const FrequencyLadder &ladder() const { return *ladder_; }

  private:
    const FrequencyLadder *ladder_;
    const PowerModel *power_;
    double currentFreq_;
    SpeedupCurve speedup_;
    double serviceRate_ = 1.0;
    double maxFreq_ = std::numeric_limits<double>::infinity();
    double busyPowerScale_ = 1.0;
    double idlePowerExtra_ = 0.0;
    std::vector<DownWindow> down_;
    std::vector<double> workerBusyUntil_;
    double energyJoules_ = 0.0;
    double busySeconds_ = 0.0;
    uint64_t requestsServed_ = 0;
    uint64_t requestsTruncated_ = 0;
    uint64_t requestsZeroProgress_ = 0;
};

} // namespace cottage

#endif // COTTAGE_SIM_ISN_SERVER_H
