/**
 * @file
 * Work-to-cycles cost model.
 *
 * The bridge between real retrieval and simulated time: the evaluators
 * report exactly what they did (postings scored, documents evaluated,
 * skips), and this model converts that work into CPU cycles. Service
 * time then follows as cycles / frequency, which is the
 * compute-intensive assumption behind the paper's Eq. (1).
 */

#ifndef COTTAGE_SIM_WORK_MODEL_H
#define COTTAGE_SIM_WORK_MODEL_H

#include "index/evaluator.h"

namespace cottage {

/**
 * Linear cycle cost model over the evaluator work counters.
 *
 * The default constants are calibrated for the default experiment
 * corpus (~60K documents standing in for the paper's 34M): per-unit
 * costs are inflated so that per-query service times land in the
 * paper's 4-65 ms envelope while remaining strictly proportional to
 * real retrieval work.
 */
struct WorkModel
{
    /** Fixed per-request dispatch/setup cost. */
    double baseCycles = 1.0e6;

    /** Cost of decoding and scoring one posting. */
    double cyclesPerPosting = 12000.0;

    /** Per-candidate-document overhead (heap checks, accumulators). */
    double cyclesPerDoc = 4000.0;

    /** Cost of skipping one posting (pointer advance, no decode). */
    double cyclesPerSkip = 300.0;

    /**
     * Cost of StreamVByte group-decoding one posting block (block-max
     * evaluators only; zero blocks reported keeps the flat evaluators'
     * service times byte-identical to before the block-max layer
     * existed). Kept at the original VByte-era value on purpose: the
     * simulated cost model is a calibration constant, not a claim
     * about the host CPU — docs/cycles.md carries the measured costs.
     */
    double cyclesPerBlockDecoded = 2000.0;

    /** Cost of skipping one whole block via its metadata. */
    double cyclesPerBlockSkipped = 150.0;

    /** Total cycles for one shard-local query evaluation. */
    double
    cycles(const SearchWork &work) const
    {
        return baseCycles +
               cyclesPerPosting * static_cast<double>(work.postingsScored) +
               cyclesPerDoc * static_cast<double>(work.docsScored) +
               cyclesPerSkip * static_cast<double>(work.postingsSkipped) +
               cyclesPerBlockDecoded *
                   static_cast<double>(work.blocksDecoded) +
               cyclesPerBlockSkipped *
                   static_cast<double>(work.blocksSkipped);
    }

    /** Service seconds at a frequency in GHz. */
    double
    serviceSeconds(const SearchWork &work, double freqGhz) const
    {
        return cycles(work) / (freqGhz * 1e9);
    }

    /** Service seconds for a known cycle count at a frequency in GHz. */
    static double
    secondsForCycles(double cycleCount, double freqGhz)
    {
        return cycleCount / (freqGhz * 1e9);
    }

    /**
     * Anytime docs cap for a request cut off after a fraction of its
     * full service: cycles are proportional to documents scored (the
     * per-posting/skip terms scale with the same prefix), so the
     * number of candidates evaluated by the cutoff is the same
     * fraction of the full run's, rounded to nearest with explicit
     * half-to-even tie-breaking. Truncating toward zero let a
     * fraction of 1-epsilon (the busySeconds/service float division
     * when the deadline lands a hair before the finish) cap a fully
     * scored list one document short; round-half-even recovers the
     * full prefix at the fraction~1 boundary and is unbiased at exact
     * halves. Deterministic — pure arithmetic on the simulated-time
     * fraction, independent of the host FP environment (no fesetround
     * dependence), never the host clock.
     */
    uint64_t
    docsCapForFraction(const SearchWork &fullWork, double fraction) const
    {
        if (fraction <= 0.0)
            return 0;
        if (fraction >= 1.0)
            return fullWork.docsScored;
        const double scaled =
            fraction * static_cast<double>(fullWork.docsScored);
        auto cap = static_cast<uint64_t>(scaled);
        const double remainder = scaled - static_cast<double>(cap);
        if (remainder > 0.5 || (remainder == 0.5 && (cap % 2) == 1))
            ++cap;
        return cap < fullWork.docsScored ? cap : fullWork.docsScored;
    }
};

} // namespace cottage

#endif // COTTAGE_SIM_WORK_MODEL_H
