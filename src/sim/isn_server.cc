#include "sim/isn_server.h"

#include <algorithm>

#include "sim/work_model.h"
#include "util/logging.h"

namespace cottage {

IsnServerSim::IsnServerSim(const FrequencyLadder &ladder,
                           const PowerModel &power, uint32_t workers)
    : ladder_(&ladder), power_(&power), currentFreq_(ladder.defaultGhz())
{
    COTTAGE_CHECK_MSG(workers >= 1, "an ISN needs at least one worker");
    workerBusyUntil_.assign(workers, 0.0);
}

double
IsnServerSim::backlogSeconds(double nowSeconds) const
{
    const double earliest =
        *std::min_element(workerBusyUntil_.begin(), workerBusyUntil_.end());
    return earliest > nowSeconds ? earliest - nowSeconds : 0.0;
}

double
IsnServerSim::backlogSeconds(double nowSeconds, uint32_t cores) const
{
    COTTAGE_CHECK_MSG(cores >= 1 && cores <= workers(),
                      "backlog query for " << cores << " cores on an ISN "
                                           << "with " << workers()
                                           << " workers");
    // The gang start is gated by the cores-th earliest worker — the
    // same selection rule execute() applies.
    std::vector<double> until = workerBusyUntil_;
    std::nth_element(until.begin(), until.begin() + (cores - 1),
                     until.end());
    const double start = until[cores - 1];
    return start > nowSeconds ? start - nowSeconds : 0.0;
}

double
IsnServerSim::busyUntilSeconds() const
{
    return *std::max_element(workerBusyUntil_.begin(),
                             workerBusyUntil_.end());
}

IsnExecution
IsnServerSim::execute(double arrivalSeconds, double cycles, double freqGhz,
                      double deadlineSeconds, uint32_t cores)
{
    COTTAGE_CHECK_MSG(cycles >= 0.0, "negative work");
    COTTAGE_CHECK_MSG(freqGhz > 0.0, "invalid frequency");
    COTTAGE_CHECK_MSG(cores >= 1 && cores <= workers(),
                      "request cores " << cores << " exceed the ISN's "
                                       << workers() << " workers");

    // FIFO dispatch to the `cores` workers that free up first. Ties
    // keep ascending worker index (stable sort), so the gang choice —
    // and with it every simulated second — is a pure function of the
    // queue state. cores = 1 picks exactly the min_element worker the
    // single-core model always used.
    std::vector<std::size_t> order(workerBusyUntil_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return workerBusyUntil_[a] < workerBusyUntil_[b];
                     });

    // Heterogeneous-hardware clamp: a plan asking for a P-state this
    // node does not have runs at the node's own ceiling instead.
    if (freqGhz > maxFreq_ + 1e-12)
        freqGhz = ladder_->atMost(maxFreq_);

    IsnExecution exec;
    exec.freqGhz = freqGhz;
    exec.cores = cores;
    // A gang start: the request begins when the last of its cores
    // frees up (the first cores entries of the sorted order).
    exec.startSeconds =
        std::max(arrivalSeconds, workerBusyUntil_[order[cores - 1]]);

    const double service = WorkModel::secondsForCycles(cycles, freqGhz) /
                           serviceRate_ / speedup_.speedup(cores);
    const double wouldFinish = exec.startSeconds + service;

    if (wouldFinish <= deadlineSeconds) {
        exec.finishSeconds = wouldFinish;
        exec.busySeconds = service;
        exec.completed = true;
        exec.completedFraction = 1.0;
    } else {
        // Deadline expires mid-service (or before the queue drains):
        // the ISN abandons the request at the deadline and responds
        // with whatever it has scored so far (anytime contract).
        exec.finishSeconds = std::max(exec.startSeconds, deadlineSeconds);
        exec.busySeconds = exec.finishSeconds - exec.startSeconds;
        exec.completed = false;
        exec.completedFraction =
            service > 0.0 ? exec.busySeconds / service : 0.0;
        ++requestsTruncated_;
        // Deadline expired before the queue drained: the core never
        // touched the request, so there is no anytime prefix to
        // respond with — distinct from a mid-service abandon.
        if (exec.busySeconds <= 0.0)
            ++requestsZeroProgress_;
    }

    for (uint32_t c = 0; c < cores; ++c)
        workerBusyUntil_[order[c]] = exec.finishSeconds;
    busySeconds_ += exec.busySeconds * static_cast<double>(cores);
    exec.energyJoules =
        busyPowerScale_ *
        power_->busyEnergyJoules(exec.busySeconds, freqGhz, cores);
    energyJoules_ += exec.energyJoules;
    ++requestsServed_;
    return exec;
}

void
IsnServerSim::setCurrentFreqGhz(double freqGhz)
{
    COTTAGE_CHECK_MSG(ladder_->contains(freqGhz),
                      "frequency is not a ladder step");
    currentFreq_ = freqGhz;
}

void
IsnServerSim::setServiceRateMultiplier(double multiplier)
{
    COTTAGE_CHECK_MSG(multiplier > 0.0,
                      "service-rate multiplier must be positive");
    serviceRate_ = multiplier;
}

void
IsnServerSim::setMaxFreqGhz(double freqGhz)
{
    COTTAGE_CHECK_MSG(freqGhz >= ladder_->minGhz(),
                      "frequency cap below the ladder's lowest step");
    maxFreq_ = freqGhz;
}

void
IsnServerSim::setBusyPowerScale(double scale)
{
    COTTAGE_CHECK_MSG(scale > 0.0, "busy-power scale must be positive");
    busyPowerScale_ = scale;
}

void
IsnServerSim::setIdlePowerExtraWatts(double watts)
{
    COTTAGE_CHECK_MSG(watts >= 0.0,
                      "idle-power extra must be non-negative");
    idlePowerExtra_ = watts;
}

void
IsnServerSim::setDownWindows(std::vector<DownWindow> windows)
{
    for (std::size_t i = 0; i < windows.size(); ++i) {
        COTTAGE_CHECK_MSG(windows[i].fromSeconds < windows[i].toSeconds,
                          "down window must be a non-empty interval");
        if (i > 0)
            COTTAGE_CHECK_MSG(windows[i - 1].toSeconds <=
                                  windows[i].fromSeconds,
                              "down windows must ascend without overlap");
    }
    down_ = std::move(windows);
}

bool
IsnServerSim::availableAt(double nowSeconds) const
{
    for (const DownWindow &window : down_) {
        if (nowSeconds < window.fromSeconds)
            return true; // windows ascend: nothing later covers now
        if (nowSeconds < window.toSeconds)
            return false;
    }
    return true;
}

void
IsnServerSim::clearShape()
{
    serviceRate_ = 1.0;
    maxFreq_ = std::numeric_limits<double>::infinity();
    busyPowerScale_ = 1.0;
    idlePowerExtra_ = 0.0;
    down_.clear();
}

void
IsnServerSim::reset()
{
    std::fill(workerBusyUntil_.begin(), workerBusyUntil_.end(), 0.0);
    energyJoules_ = 0.0;
    busySeconds_ = 0.0;
    requestsServed_ = 0;
    requestsTruncated_ = 0;
    requestsZeroProgress_ = 0;
    currentFreq_ = ladder_->defaultGhz();
}

} // namespace cottage
