#include "sim/cluster.h"

#include "util/logging.h"

namespace cottage {

ClusterSim::ClusterSim(ShardId numIsns, FrequencyLadder ladder,
                       PowerModel power, NetworkModel network,
                       uint32_t coresPerIsn)
    : ladder_(std::move(ladder)), power_(power), network_(network)
{
    COTTAGE_CHECK_MSG(numIsns >= 1, "cluster needs at least one ISN");
    servers_.reserve(numIsns);
    for (ShardId s = 0; s < numIsns; ++s)
        servers_.emplace_back(ladder_, power_, coresPerIsn);
}

IsnServerSim &
ClusterSim::isn(ShardId id)
{
    COTTAGE_CHECK(id < servers_.size());
    return servers_[id];
}

const IsnServerSim &
ClusterSim::isn(ShardId id) const
{
    COTTAGE_CHECK(id < servers_.size());
    return servers_[id];
}

double
ClusterSim::totalEnergyJoules() const
{
    double total = 0.0;
    for (const IsnServerSim &server : servers_)
        total += server.energyJoules();
    return total;
}

double
ClusterSim::totalBusySeconds() const
{
    double total = 0.0;
    for (const IsnServerSim &server : servers_)
        total += server.busySeconds();
    return total;
}

double
ClusterSim::averagePowerWatts(double windowSeconds) const
{
    // Heterogeneous nodes may add static watts on top of the fleet
    // idle floor; a pristine cluster adds zero and reports exactly
    // the package model's number.
    double extraIdle = 0.0;
    for (const IsnServerSim &server : servers_)
        extraIdle += server.idlePowerExtraWatts();
    return power_.averagePowerWatts(totalEnergyJoules(), windowSeconds) +
           extraIdle;
}

void
ClusterSim::setSpeedupCurve(const SpeedupCurve &curve)
{
    for (IsnServerSim &server : servers_)
        server.setSpeedupCurve(curve);
}

void
ClusterSim::reset()
{
    for (IsnServerSim &server : servers_)
        server.reset();
}

void
ClusterSim::applyShape(const ClusterShape &shape)
{
    clearShape();
    for (const IsnShape &traits : shape.isns) {
        IsnServerSim &server = isn(traits.isn);
        server.setServiceRateMultiplier(traits.serviceRateMultiplier);
        if (traits.maxFreqGhz !=
            std::numeric_limits<double>::infinity())
            server.setMaxFreqGhz(traits.maxFreqGhz);
        server.setBusyPowerScale(traits.busyPowerScale);
        server.setIdlePowerExtraWatts(traits.idlePowerExtraWatts);
        server.setDownWindows(traits.downWindows);
    }
}

void
ClusterSim::clearShape()
{
    for (IsnServerSim &server : servers_)
        server.clearShape();
}

} // namespace cottage
