/**
 * @file
 * Package power model with RAPL-style energy integration.
 *
 * Calibrated against the paper's Fig. 14 operating points: the 16-ISN
 * server idles at 14.53 W and draws ~36 W under exhaustive search at
 * the default experiment's load (~8 busy-ISN-equivalents). Dynamic
 * power scales with f^3 (voltage tracks frequency), so boosting a core
 * to 2.7 GHz costs superlinearly more than the default 2.1 GHz — the
 * trade Cottage's budget optimizer navigates.
 */

#ifndef COTTAGE_SIM_POWER_MODEL_H
#define COTTAGE_SIM_POWER_MODEL_H

#include <cmath>

namespace cottage {

/** Static + per-busy-ISN dynamic package power. */
struct PowerModel
{
    /** Whole-package idle power in watts (paper: 14.53 W). */
    double idleWatts = 14.53;

    /** One ISN's extra power when busy at the reference frequency. */
    double busyWattsAtReference = 2.68;

    /** Reference frequency for the dynamic term, GHz. */
    double referenceGhz = 2.1;

    /** Dynamic-power frequency exponent (V ~ f gives ~f^3). */
    double frequencyExponent = 3.0;

    /** Extra power of one busy ISN core at the given frequency. */
    double
    busyWatts(double freqGhz) const
    {
        return busyWattsAtReference *
               std::pow(freqGhz / referenceGhz, frequencyExponent);
    }

    /** Energy (J) of one busy interval at a frequency. */
    double
    busyEnergyJoules(double seconds, double freqGhz) const
    {
        return seconds * busyWatts(freqGhz);
    }

    /**
     * Average package power over a window: idle floor plus the busy
     * energy all ISNs accumulated inside the window.
     */
    double
    averagePowerWatts(double busyEnergyTotal, double windowSeconds) const
    {
        if (windowSeconds <= 0.0)
            return idleWatts;
        return idleWatts + busyEnergyTotal / windowSeconds;
    }
};

} // namespace cottage

#endif // COTTAGE_SIM_POWER_MODEL_H
