/**
 * @file
 * Package power model with RAPL-style energy integration.
 *
 * Calibrated against the paper's Fig. 14 operating points: the 16-ISN
 * server idles at 14.53 W and draws ~36 W under exhaustive search at
 * the default experiment's load (~8 busy-ISN-equivalents). Dynamic
 * power scales with f^3 (voltage tracks frequency), so boosting a core
 * to 2.7 GHz costs superlinearly more than the default 2.1 GHz — the
 * trade Cottage's budget optimizer navigates.
 */

#ifndef COTTAGE_SIM_POWER_MODEL_H
#define COTTAGE_SIM_POWER_MODEL_H

#include <cmath>
#include <cstdint>

namespace cottage {

/**
 * Static + dynamic package power, McPAT-style split: a busy request
 * draws P = P_static + numActiveCores * P_dynamic(f). P_static here
 * is the package idle floor (always on) plus an optional per-request
 * uncore adder that engages only while a request is in service;
 * P_dynamic(f) is the per-core frequency-cubed term. The uncore adder
 * defaults to 0 so every single-core byte predates this split
 * unchanged.
 */
struct PowerModel
{
    /** Whole-package idle power in watts (paper: 14.53 W). */
    double idleWatts = 14.53;

    /** One ISN's extra power when busy at the reference frequency. */
    double busyWattsAtReference = 2.68;

    /** Reference frequency for the dynamic term, GHz. */
    double referenceGhz = 2.1;

    /** Dynamic-power frequency exponent (V ~ f gives ~f^3). */
    double frequencyExponent = 3.0;

    /**
     * Static uncore power drawn while a request is in service,
     * regardless of how many cores it spans (shared cache, memory
     * controller). Zero by default: the single-core energy stream is
     * then bit-identical to the pre-split model.
     */
    double uncoreWattsActive = 0.0;

    /** Dynamic power of ONE busy core at the given frequency. */
    double
    busyWatts(double freqGhz) const
    {
        return busyWattsAtReference *
               std::pow(freqGhz / referenceGhz, frequencyExponent);
    }

    /** Active power of a request spanning @p activeCores cores. */
    double
    activePowerWatts(double freqGhz, uint32_t activeCores) const
    {
        return uncoreWattsActive +
               static_cast<double>(activeCores) * busyWatts(freqGhz);
    }

    /** Energy (J) of one single-core busy interval at a frequency. */
    double
    busyEnergyJoules(double seconds, double freqGhz) const
    {
        return seconds * busyWatts(freqGhz);
    }

    /** Energy (J) of a busy interval spanning @p activeCores cores. */
    double
    busyEnergyJoules(double seconds, double freqGhz,
                     uint32_t activeCores) const
    {
        return seconds * activePowerWatts(freqGhz, activeCores);
    }

    /**
     * Average package power over a window: idle floor plus the busy
     * energy all ISNs accumulated inside the window.
     */
    double
    averagePowerWatts(double busyEnergyTotal, double windowSeconds) const
    {
        if (windowSeconds <= 0.0)
            return idleWatts;
        return idleWatts + busyEnergyTotal / windowSeconds;
    }
};

} // namespace cottage

#endif // COTTAGE_SIM_POWER_MODEL_H
