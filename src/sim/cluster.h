/**
 * @file
 * The simulated search cluster: one ISN server per shard plus the
 * datacenter network and the package-level power/energy view.
 */

#ifndef COTTAGE_SIM_CLUSTER_H
#define COTTAGE_SIM_CLUSTER_H

#include <vector>

#include "sim/frequency.h"
#include "sim/isn_server.h"
#include "sim/power_model.h"
#include "text/types.h"

namespace cottage {

/** Network cost parameters (datacenter-internal, paper §III-A). */
struct NetworkModel
{
    /** One aggregator<->ISN round trip, seconds (paper: a few µs). */
    double rttSeconds = 20e-6;

    /** Aggregator-side merge cost per query, seconds. */
    double mergeSeconds = 50e-6;
};

/** Hardware traits for one ISN in a hostile cluster shape. */
struct IsnShape
{
    /** Which ISN the traits apply to. */
    ShardId isn = 0;

    /** Service-rate scale (< 1 = straggler). */
    double serviceRateMultiplier = 1.0;

    /** Frequency ceiling, GHz (infinity = unconstrained). */
    double maxFreqGhz = std::numeric_limits<double>::infinity();

    /**
     * Per-node dynamic-power multiplier (> 1 = a power-hungry part
     * drawing more joules per unit of work; 1 = fleet baseline).
     */
    double busyPowerScale = 1.0;

    /**
     * Extra static watts this node adds to the package idle floor
     * (reported in average power, never in busy energy).
     */
    double idlePowerExtraWatts = 0.0;

    /** Scheduled failure/recovery events. */
    std::vector<DownWindow> downWindows;
};

/**
 * A cluster-wide hostile shape: straggler nodes, heterogeneous
 * frequency ceilings and mid-run outages, applied per ISN. The
 * scenario layer installs one before serving and clears it after, so
 * replay runs on the same cluster are untouched.
 */
struct ClusterShape
{
    std::vector<IsnShape> isns;
};

/** A set of ISN servers sharing a package power model. */
class ClusterSim
{
  public:
    /**
     * @param coresPerIsn Worker cores per ISN (default 1; the paper's
     *        server spreads 24 cores over 16 ISNs).
     */
    ClusterSim(ShardId numIsns, FrequencyLadder ladder, PowerModel power,
               NetworkModel network = {}, uint32_t coresPerIsn = 1);

    // Each IsnServerSim holds pointers into this object's ladder_ and
    // power_ members; a copied or moved cluster would leave every
    // server dangling into the source. Immovable by construction.
    ClusterSim(const ClusterSim &) = delete;
    ClusterSim &operator=(const ClusterSim &) = delete;
    ClusterSim(ClusterSim &&) = delete;
    ClusterSim &operator=(ClusterSim &&) = delete;

    ShardId numIsns() const { return static_cast<ShardId>(servers_.size()); }
    IsnServerSim &isn(ShardId id);
    const IsnServerSim &isn(ShardId id) const;

    const FrequencyLadder &ladder() const { return ladder_; }
    const PowerModel &power() const { return power_; }
    const NetworkModel &network() const { return network_; }

    /**
     * Install one intra-query speedup curve on every ISN (the model
     * behind multi-core request service; see sim/speedup.h).
     */
    void setSpeedupCurve(const SpeedupCurve &curve);

    /** Sum of all ISNs' busy energy, joules. */
    double totalEnergyJoules() const;

    /** Sum of all ISNs' busy seconds. */
    double totalBusySeconds() const;

    /** Average package power over a window (idle + busy energy). */
    double averagePowerWatts(double windowSeconds) const;

    /** Reset every ISN's queue and meters. */
    void reset();

    /** Install hostile hardware traits (clears any previous shape). */
    void applyShape(const ClusterShape &shape);

    /** Restore pristine hardware on every ISN. */
    void clearShape();

  private:
    FrequencyLadder ladder_;
    PowerModel power_;
    NetworkModel network_;
    std::vector<IsnServerSim> servers_;
};

} // namespace cottage

#endif // COTTAGE_SIM_CLUSTER_H
