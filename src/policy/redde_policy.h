/**
 * @file
 * ReDDE resource selection (Si & Callan [18]): search the CSI, scale
 * each sampled hit by its shard's sampling factor to estimate the
 * number of relevant documents per shard, and select the shards
 * holding a target fraction of the estimated relevance mass. The
 * ancestor of the CSI family the paper's related-work section
 * discusses; included as an extra comparator beyond the paper's three.
 */

#ifndef COTTAGE_POLICY_REDDE_POLICY_H
#define COTTAGE_POLICY_REDDE_POLICY_H

#include "policy/csi.h"
#include "policy/policy.h"

namespace cottage {

/** ReDDE knobs. */
struct ReddeConfig
{
    /** CSI sampling rate. */
    double sampleRate = 0.01;

    /** CSI result depth treated as "relevant". */
    std::size_t csiDepth = 100;

    /**
     * Shards are taken in decreasing estimated-relevance order until
     * this fraction of the total estimate is covered.
     */
    double coverage = 0.85;

    /** Sampling seed. */
    uint64_t seed = 777;
};

/** CSI + scale-factor shard ranking with coverage cutoff. */
class ReddePolicy : public Policy
{
  public:
    ReddePolicy(const Corpus &corpus, const ShardedIndex &index,
                ReddeConfig config = {});

    const char *name() const override { return "redde"; }

    QueryPlan plan(const Query &query,
                   const DistributedEngine &engine) override;

    /** Estimated relevant-document mass per shard (unnormalized). */
    std::vector<double>
    shardEstimates(const std::vector<TermId> &terms) const;

    /** Weighted (personalized) variant. */
    std::vector<double>
    shardEstimates(const std::vector<WeightedTerm> &terms) const;

  private:
    ReddeConfig config_;
    const ShardedIndex *index_;
    CentralSampleIndex csi_;
};

} // namespace cottage

#endif // COTTAGE_POLICY_REDDE_POLICY_H
