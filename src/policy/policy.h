/**
 * @file
 * The ISN-selection / time-budget policy interface.
 *
 * A policy inspects a query (and read-only engine state such as queue
 * backlogs) and produces a QueryPlan: which ISNs run the query, at what
 * frequency, under what budget. The engine executes plans; the harness
 * replays traces through (policy, engine) pairs.
 */

#ifndef COTTAGE_POLICY_POLICY_H
#define COTTAGE_POLICY_POLICY_H

#include "engine/distributed_engine.h"
#include "engine/query_plan.h"
#include "text/query.h"

namespace cottage {

/** Per-query ISN selection and budget assignment strategy. */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Policy name for reports ("exhaustive", "taily", "cottage"...). */
    virtual const char *name() const = 0;

    /**
     * Decide the plan for a query arriving at query.arrivalSeconds.
     * The engine is read-only here: policies may inspect indexes,
     * term statistics and ISN backlogs but never mutate cluster state.
     */
    virtual QueryPlan plan(const Query &query,
                           const DistributedEngine &engine) = 0;

    /**
     * Feedback hook: called with the measurement of every executed
     * query. Adaptive policies (the epoch-based aggregation baseline)
     * use it; the default is a no-op.
     */
    virtual void
    observe(const QueryMeasurement &measurement)
    {
        (void)measurement;
    }

    /** Reset any adaptive state between experiment runs. */
    virtual void reset() {}
};

} // namespace cottage

#endif // COTTAGE_POLICY_POLICY_H
