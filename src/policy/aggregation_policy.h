/**
 * @file
 * Epoch-based aggregation policy (the paper's Fig. 3(b) comparison,
 * after Yun et al. [6] / Chou et al. [25]): one time budget is chosen
 * per epoch from recently observed latencies and applied to *all*
 * queries of the next epoch, ignoring per-query quality. Stragglers
 * are simply cut off at the budget.
 */

#ifndef COTTAGE_POLICY_AGGREGATION_POLICY_H
#define COTTAGE_POLICY_AGGREGATION_POLICY_H

#include <cstddef>
#include <vector>

#include "policy/policy.h"

namespace cottage {

/** Configuration of the epoch budget. */
struct AggregationPolicyConfig
{
    /** Queries per epoch (budget recomputed at epoch boundaries). */
    std::size_t epochQueries = 100;

    /**
     * The budget is this quantile of the previous epoch's client
     * latencies — the "optimal average response time for most
     * queries" heuristic.
     */
    double latencyQuantile = 0.75;

    /** Budget applied before the first epoch completes (none). */
    double warmupBudgetSeconds = noBudget;
};

/** All ISNs participate; a shared epoch budget cuts the tail. */
class AggregationPolicy : public Policy
{
  public:
    explicit AggregationPolicy(AggregationPolicyConfig config = {})
        : config_(config)
    {
    }

    const char *name() const override { return "aggregation"; }

    QueryPlan plan(const Query &query,
                   const DistributedEngine &engine) override;

    void observe(const QueryMeasurement &measurement) override;

    void reset() override;

    /** Budget currently in force (for tests/inspection). */
    double currentBudgetSeconds() const { return budget_; }

  private:
    AggregationPolicyConfig config_;
    std::vector<double> window_;
    double budget_ = noBudget;
};

} // namespace cottage

#endif // COTTAGE_POLICY_AGGREGATION_POLICY_H
