/**
 * @file
 * Central Sample Index (CSI): a small uniform sample of every shard's
 * documents, indexed at the aggregator with the same global scoring
 * statistics. The shared substrate of the CSI family of selective
 * search algorithms — ReDDE [18] and Rank-S [17].
 */

#ifndef COTTAGE_POLICY_CSI_H
#define COTTAGE_POLICY_CSI_H

#include <memory>
#include <vector>

#include "index/evaluator.h"
#include "index/inverted_index.h"
#include "shard/sharded_index.h"
#include "text/corpus.h"

namespace cottage {

/** Sampled central index with shard attribution and scale factors. */
class CentralSampleIndex
{
  public:
    /**
     * Sample every shard at @p sampleRate (at least one document per
     * shard, so none is structurally invisible).
     */
    CentralSampleIndex(const Corpus &corpus, const ShardedIndex &index,
                       double sampleRate, uint64_t seed);

    /** Number of sampled documents. */
    std::size_t size() const { return sampledPerShard_.empty() ? 0 : total_; }

    /** Sampled documents from one shard. */
    std::size_t sampledFrom(ShardId shard) const;

    /**
     * ReDDE's scale factor: how many shard documents one sampled
     * document represents (shard size / sampled count).
     */
    double scaleFactor(ShardId shard) const;

    /** Top-@p depth CSI results for a query (global DocIds). */
    std::vector<ScoredDoc> search(const std::vector<TermId> &terms,
                                  std::size_t depth) const;

    /** Weighted (personalized) CSI search. */
    std::vector<ScoredDoc> search(const std::vector<WeightedTerm> &terms,
                                  std::size_t depth) const;

    /** Shard that owns a CSI hit. */
    ShardId shardOf(DocId doc) const;

  private:
    const ShardedIndex *index_;
    std::unique_ptr<InvertedIndex> csi_;
    std::vector<std::size_t> sampledPerShard_;
    std::size_t total_ = 0;
};

} // namespace cottage

#endif // COTTAGE_POLICY_CSI_H
