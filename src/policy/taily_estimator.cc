#include "policy/taily_estimator.h"

#include <algorithm>
#include <cmath>

#include "stats/gamma.h"
#include "util/logging.h"

namespace cottage {

std::vector<TailyEstimator::ShardModel>
TailyEstimator::fitShards(const std::vector<TermId> &terms) const
{
    return fitShards(toWeighted(terms));
}

std::vector<double>
TailyEstimator::expectedTopContributions(const std::vector<TermId> &terms,
                                         double target) const
{
    return expectedTopContributions(toWeighted(terms), target);
}

std::vector<TailyEstimator::ShardModel>
TailyEstimator::fitShards(const std::vector<WeightedTerm> &terms) const
{
    std::vector<ShardModel> models(index_->numShards());
    for (ShardId s = 0; s < index_->numShards(); ++s) {
        const TermStatsStore &stats = index_->termStats(s);
        ShardModel &model = models[s];
        if (unionSemantics_) {
            // Mixture form: the score population is the df-weighted
            // pool of per-term score distributions. Personalization
            // weights scale each term's score linearly, so its mean
            // scales by w and its second moment by w^2.
            double totalDf = 0.0;
            double weightedMean = 0.0;
            double weightedSecondMoment = 0.0;
            for (const WeightedTerm &wt : terms) {
                const TermStats *ts = stats.get(wt.term);
                if (ts == nullptr)
                    continue;
                const double df = ts->postingLength;
                const double w = wt.weight;
                totalDf += df;
                weightedMean += df * w * ts->meanScore;
                weightedSecondMoment +=
                    df * w * w *
                    (ts->scoreVariance + ts->meanScore * ts->meanScore);
            }
            if (totalDf <= 0.0)
                continue;
            model.candidates = std::min(
                totalDf, static_cast<double>(index_->shard(s).numDocs()));
            model.mean = weightedMean / totalDf;
            model.variance =
                weightedSecondMoment / totalDf - model.mean * model.mean;
            if (model.variance < 0.0)
                model.variance = 0.0;
        } else {
            // Original Taily: documents containing *all* query terms
            // (independence estimate of the intersection size), whose
            // scores are sums of independent per-term scores.
            const double shardDocs =
                static_cast<double>(index_->shard(s).numDocs());
            double candidates = shardDocs;
            double meanSum = 0.0;
            double varSum = 0.0;
            bool anyMissing = false;
            for (const WeightedTerm &wt : terms) {
                const TermStats *ts = stats.get(wt.term);
                if (ts == nullptr) {
                    anyMissing = true;
                    break;
                }
                candidates *= ts->postingLength / shardDocs;
                meanSum += wt.weight * ts->meanScore;
                varSum += wt.weight * wt.weight * ts->scoreVariance;
            }
            if (anyMissing || candidates < 1e-9)
                continue;
            model.candidates = candidates;
            model.mean = meanSum;
            model.variance = varSum;
        }
    }
    return models;
}

std::vector<double>
TailyEstimator::expectedTopContributions(
    const std::vector<WeightedTerm> &terms, double target) const
{
    COTTAGE_CHECK_MSG(target > 0.0, "target must be positive");
    const std::vector<ShardModel> models = fitShards(terms);

    std::vector<double> contributions(models.size(), 0.0);
    std::vector<GammaDistribution> fits;
    fits.reserve(models.size());
    double totalCandidates = 0.0;
    double maxMean = 0.0;
    for (const ShardModel &model : models) {
        fits.push_back(
            GammaDistribution::fitMoments(model.mean, model.variance));
        totalCandidates += model.candidates;
        maxMean = std::max(maxMean, model.mean);
    }

    if (totalCandidates <= target) {
        // Fewer candidates than slots: every candidate is expected in.
        for (std::size_t s = 0; s < models.size(); ++s)
            contributions[s] = models[s].candidates;
        return contributions;
    }

    // Expected docs above a score threshold, collection-wide.
    const auto docsAbove = [&](double threshold) {
        double total = 0.0;
        for (std::size_t s = 0; s < models.size(); ++s) {
            if (models[s].candidates > 0.0)
                total += models[s].candidates * fits[s].survival(threshold);
        }
        return total;
    };

    // Bisection for s_c with docsAbove(s_c) = target; docsAbove is
    // monotone decreasing in the threshold.
    double lo = 0.0;
    double hi = maxMean + 1.0;
    while (docsAbove(hi) > target)
        hi *= 2.0;
    for (int iter = 0; iter < 100; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (docsAbove(mid) > target)
            lo = mid;
        else
            hi = mid;
    }
    const double threshold = 0.5 * (lo + hi);

    for (std::size_t s = 0; s < models.size(); ++s) {
        if (models[s].candidates > 0.0)
            contributions[s] =
                models[s].candidates * fits[s].survival(threshold);
    }
    return contributions;
}

} // namespace cottage
