#include "policy/redde_policy.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace cottage {

ReddePolicy::ReddePolicy(const Corpus &corpus, const ShardedIndex &index,
                         ReddeConfig config)
    : config_(config), index_(&index),
      csi_(corpus, index, config.sampleRate, config.seed)
{
    COTTAGE_CHECK_MSG(config.coverage > 0.0 && config.coverage <= 1.0,
                      "coverage must be a fraction");
}

std::vector<double>
ReddePolicy::shardEstimates(const std::vector<TermId> &terms) const
{
    return shardEstimates(toWeighted(terms));
}

std::vector<double>
ReddePolicy::shardEstimates(const std::vector<WeightedTerm> &terms) const
{
    const std::vector<ScoredDoc> hits =
        csi_.search(terms, config_.csiDepth);
    std::vector<double> estimates(index_->numShards(), 0.0);
    for (const ScoredDoc &hit : hits) {
        const ShardId owner = csi_.shardOf(hit.doc);
        estimates[owner] += csi_.scaleFactor(owner);
    }
    return estimates;
}

QueryPlan
ReddePolicy::plan(const Query &query, const DistributedEngine &engine)
{
    QueryPlan plan = QueryPlan::allIsns(engine.index().numShards());
    const std::vector<double> estimates =
        shardEstimates(DistributedEngine::weightedTerms(query));
    const double total =
        std::accumulate(estimates.begin(), estimates.end(), 0.0);
    if (total <= 0.0)
        return plan; // CSI blind to this query: exhaustive fallback

    // Decreasing-estimate order; keep shards until coverage reached.
    std::vector<ShardId> order(estimates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](ShardId a, ShardId b) {
        if (estimates[a] != estimates[b])
            return estimates[a] > estimates[b];
        return a < b;
    });

    for (IsnDirective &directive : plan.isns)
        directive.participate = false;
    double covered = 0.0;
    for (ShardId shard : order) {
        if (estimates[shard] <= 0.0)
            break;
        plan.isns[shard].participate = true;
        covered += estimates[shard];
        if (covered >= config_.coverage * total)
            break;
    }
    return plan;
}

} // namespace cottage
