/**
 * @file
 * Exhaustive search: every ISN answers every query, the aggregator
 * waits for the slowest. The paper's baseline (P@10 = 1 by
 * construction, worst latency and power).
 */

#ifndef COTTAGE_POLICY_EXHAUSTIVE_POLICY_H
#define COTTAGE_POLICY_EXHAUSTIVE_POLICY_H

#include "policy/policy.h"

namespace cottage {

/** All ISNs, no budget, default frequency. */
class ExhaustivePolicy : public Policy
{
  public:
    const char *name() const override { return "exhaustive"; }

    QueryPlan
    plan(const Query &query, const DistributedEngine &engine) override
    {
        (void)query;
        return QueryPlan::allIsns(engine.index().numShards());
    }
};

} // namespace cottage

#endif // COTTAGE_POLICY_EXHAUSTIVE_POLICY_H
