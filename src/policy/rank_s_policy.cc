#include "policy/rank_s_policy.h"

#include <cmath>

#include "util/logging.h"

namespace cottage {

RankSPolicy::RankSPolicy(const Corpus &corpus, const ShardedIndex &index,
                         RankSConfig config)
    : config_(config), index_(&index),
      csi_(corpus, index, config.sampleRate, config.seed)
{
    COTTAGE_CHECK_MSG(config.decayBase > 1.0, "decay base must exceed 1");
}

std::vector<double>
RankSPolicy::shardVotes(const std::vector<TermId> &terms) const
{
    return shardVotes(toWeighted(terms));
}

std::vector<double>
RankSPolicy::shardVotes(const std::vector<WeightedTerm> &terms) const
{
    const std::vector<ScoredDoc> hits =
        csi_.search(terms, config_.csiDepth);

    std::vector<double> votes(index_->numShards(), 0.0);
    double total = 0.0;
    for (std::size_t rank = 0; rank < hits.size(); ++rank) {
        const double vote =
            hits[rank].score *
            std::pow(config_.decayBase, -static_cast<double>(rank));
        votes[csi_.shardOf(hits[rank].doc)] += vote;
        total += vote;
    }
    if (total > 0.0) {
        for (double &vote : votes)
            vote /= total;
    }
    return votes;
}

QueryPlan
RankSPolicy::plan(const Query &query, const DistributedEngine &engine)
{
    QueryPlan plan = QueryPlan::allIsns(engine.index().numShards());
    // The vote computation is weight-transparent: personalized weights
    // pass through the CSI scores.
    const std::vector<double> votes =
        shardVotes(DistributedEngine::weightedTerms(query));
    bool anySelected = false;
    for (ShardId s = 0; s < votes.size(); ++s) {
        plan.isns[s].participate = votes[s] >= config_.voteThreshold;
        anySelected |= plan.isns[s].participate;
    }
    // A query whose terms miss the CSI entirely degenerates to
    // exhaustive search rather than returning nothing.
    if (!anySelected) {
        for (IsnDirective &directive : plan.isns)
            directive.participate = true;
    }
    return plan;
}

} // namespace cottage
