/**
 * @file
 * Taily shard selection (Aly et al. [21]): cut off shards whose
 * Gamma-estimated contribution to the top-N results falls below a
 * fixed document cutoff. Distributed (no CSI), quality-only — it
 * ignores the latency dimension entirely, which is why it barely
 * improves tail latency in the paper's Fig. 10.
 */

#ifndef COTTAGE_POLICY_TAILY_POLICY_H
#define COTTAGE_POLICY_TAILY_POLICY_H

#include "policy/policy.h"
#include "policy/taily_estimator.h"

namespace cottage {

/** Taily knobs (nc and v in the original paper's notation). */
struct TailyConfig
{
    /**
     * Depth of the estimated global ranking (Taily's n_c). The
     * original default is 400 on ~25M-doc collections; scaled to this
     * reproduction's corpus as a multiple of K.
     */
    double rankingDepth = 60.0;

    /** Minimum expected docs for a shard to stay selected (Taily's v). */
    double docCutoff = 0.15;

    /** See TailyEstimator: intersection (false, faithful) or union. */
    bool unionSemantics = false;
};

/** Gamma-estimate based shard cutoff. */
class TailyPolicy : public Policy
{
  public:
    TailyPolicy(const ShardedIndex &index, TailyConfig config = {})
        : config_(config), estimator_(index, config.unionSemantics)
    {
    }

    const char *name() const override { return "taily"; }

    QueryPlan
    plan(const Query &query, const DistributedEngine &engine) override
    {
        QueryPlan plan = QueryPlan::allIsns(engine.index().numShards());
        const std::vector<double> contributions =
            estimator_.expectedTopContributions(
                DistributedEngine::weightedTerms(query),
                config_.rankingDepth);
        bool anySelected = false;
        for (ShardId s = 0; s < contributions.size(); ++s) {
            plan.isns[s].participate =
                contributions[s] >= config_.docCutoff;
            anySelected |= plan.isns[s].participate;
        }
        if (!anySelected) {
            // Degenerate estimate: fall back to exhaustive rather than
            // answering with nothing.
            for (IsnDirective &directive : plan.isns)
                directive.participate = true;
        }
        return plan;
    }

    const TailyEstimator &estimator() const { return estimator_; }

  private:
    TailyConfig config_;
    TailyEstimator estimator_;
};

} // namespace cottage

#endif // COTTAGE_POLICY_TAILY_POLICY_H
