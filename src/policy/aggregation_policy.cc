#include "policy/aggregation_policy.h"

#include "stats/summary.h"

namespace cottage {

QueryPlan
AggregationPolicy::plan(const Query &query, const DistributedEngine &engine)
{
    (void)query;
    QueryPlan plan = QueryPlan::allIsns(engine.index().numShards());
    plan.budgetSeconds =
        budget_ == noBudget ? config_.warmupBudgetSeconds : budget_;
    return plan;
}

void
AggregationPolicy::observe(const QueryMeasurement &measurement)
{
    window_.push_back(measurement.latencySeconds);
    if (window_.size() >= config_.epochQueries) {
        budget_ = percentile(window_, config_.latencyQuantile);
        window_.clear();
    }
}

void
AggregationPolicy::reset()
{
    window_.clear();
    budget_ = noBudget;
}

} // namespace cottage
