/**
 * @file
 * Rank-S selective search (Kulkarni et al. [17]).
 *
 * A Central Sample Index (CSI) at the aggregator holds a small sample
 * of every shard's documents. At query time the CSI is searched, and
 * each sampled hit votes for its source shard with an exponentially
 * decaying weight; shards whose vote mass falls below a fixed
 * threshold are cut off. Sampling noise is what costs Rank-S quality
 * in the paper's comparison (it knows shard *rankings*, not true
 * contributions).
 */

#ifndef COTTAGE_POLICY_RANK_S_POLICY_H
#define COTTAGE_POLICY_RANK_S_POLICY_H

#include <memory>
#include <vector>

#include "policy/csi.h"
#include "policy/policy.h"
#include "text/corpus.h"

namespace cottage {

/** Rank-S knobs. */
struct RankSConfig
{
    /** Fraction of each shard's documents sampled into the CSI. */
    double sampleRate = 0.01;

    /** CSI result depth used for voting. */
    std::size_t csiDepth = 80;

    /** Exponential decay base of the rank-discounted votes. */
    double decayBase = 1.08;

    /**
     * Fixed cutoff: shards keeping less than this fraction of the
     * total vote mass are dropped.
     */
    double voteThreshold = 0.003;

    /** Sampling seed. */
    uint64_t seed = 4242;
};

/** CSI-based shard selection with a fixed vote threshold. */
class RankSPolicy : public Policy
{
  public:
    /**
     * Build the CSI by sampling the corpus. The corpus reference is
     * used only during construction.
     */
    RankSPolicy(const Corpus &corpus, const ShardedIndex &index,
                RankSConfig config = {});

    const char *name() const override { return "rank-s"; }

    QueryPlan plan(const Query &query,
                   const DistributedEngine &engine) override;

    /** Number of documents sampled into the CSI. */
    std::size_t csiSize() const { return csi_.size(); }

    /**
     * The per-shard vote mass for a query (normalized to sum 1);
     * exposed for tests and the Fig. 3(c) analysis bench.
     */
    std::vector<double> shardVotes(const std::vector<TermId> &terms) const;

    /** Weighted (personalized) variant. */
    std::vector<double>
    shardVotes(const std::vector<WeightedTerm> &terms) const;

  private:
    RankSConfig config_;
    const ShardedIndex *index_;
    CentralSampleIndex csi_;
};

} // namespace cottage

#endif // COTTAGE_POLICY_RANK_S_POLICY_H
