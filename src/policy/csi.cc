#include "policy/csi.h"

#include <algorithm>
#include <functional>

#include "index/exhaustive_evaluator.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cottage {

CentralSampleIndex::CentralSampleIndex(const Corpus &corpus,
                                       const ShardedIndex &index,
                                       double sampleRate, uint64_t seed)
    : index_(&index), sampledPerShard_(index.numShards(), 0)
{
    COTTAGE_CHECK_MSG(sampleRate > 0.0 && sampleRate <= 1.0,
                      "CSI sample rate must be in (0, 1]");
    Rng rng(seed);
    std::vector<DocId> sampled;
    for (ShardId s = 0; s < index.numShards(); ++s) {
        const std::vector<DocId> &docs = index.shardDocs(s);
        bool any = false;
        for (DocId doc : docs) {
            if (rng.bernoulli(sampleRate)) {
                sampled.push_back(doc);
                ++sampledPerShard_[s];
                any = true;
            }
        }
        if (!any) {
            sampled.push_back(
                docs[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int64_t>(docs.size()) - 1))]);
            ++sampledPerShard_[s];
        }
    }
    std::sort(sampled.begin(), sampled.end(), std::less<DocId>());
    total_ = sampled.size();

    auto stats = std::make_shared<CollectionStats>(corpus);
    csi_ = std::make_unique<InvertedIndex>(corpus, sampled,
                                           std::move(stats),
                                           index.config().bm25);
}

std::size_t
CentralSampleIndex::sampledFrom(ShardId shard) const
{
    COTTAGE_CHECK(shard < sampledPerShard_.size());
    return sampledPerShard_[shard];
}

double
CentralSampleIndex::scaleFactor(ShardId shard) const
{
    return static_cast<double>(index_->shardDocs(shard).size()) /
           static_cast<double>(sampledFrom(shard));
}

std::vector<ScoredDoc>
CentralSampleIndex::search(const std::vector<TermId> &terms,
                           std::size_t depth) const
{
    return search(toWeighted(terms), depth);
}

std::vector<ScoredDoc>
CentralSampleIndex::search(const std::vector<WeightedTerm> &terms,
                           std::size_t depth) const
{
    const ExhaustiveEvaluator evaluator;
    return evaluator.search(*csi_, terms, depth).topK;
}

ShardId
CentralSampleIndex::shardOf(DocId doc) const
{
    return index_->shardOf(doc);
}

} // namespace cottage
