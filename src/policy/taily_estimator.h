/**
 * @file
 * Taily's Gamma-distribution quality estimation (Aly et al. [21]).
 *
 * Taily models each query's per-document score distribution on a shard
 * as a Gamma recovered from indexing-time term statistics (score mean
 * and variance per term), then estimates how many of a shard's
 * documents exceed the global score threshold of the top-N results.
 * The same estimator powers both the Taily baseline policy and the
 * Cottage-withoutML ablation (which swaps Cottage's learned quality
 * predictor for this one).
 *
 * Adaptation note (documented in DESIGN.md): Taily's original
 * intersection semantics ("docs containing all terms") collapses on a
 * disjunctive (OR) engine like ours, so we estimate union moments: the
 * per-shard score population is the df-weighted mixture of the
 * per-term score distributions. The Gamma fit and threshold logic are
 * unchanged.
 */

#ifndef COTTAGE_POLICY_TAILY_ESTIMATOR_H
#define COTTAGE_POLICY_TAILY_ESTIMATOR_H

#include <vector>

#include "index/evaluator.h"
#include "shard/sharded_index.h"
#include "text/types.h"

namespace cottage {

/** Per-shard Gamma score-model built from term statistics. */
class TailyEstimator
{
  public:
    /**
     * @param unionSemantics When false (default, faithful to Aly et
     *        al.), multi-term queries use intersection semantics:
     *        candidate count = product of df over collection size,
     *        score = sum of per-term moments. When true, the
     *        df-weighted mixture (union) form is used instead — less
     *        faithful but better matched to a disjunctive engine.
     */
    explicit TailyEstimator(const ShardedIndex &index,
                            bool unionSemantics = false)
        : index_(&index), unionSemantics_(unionSemantics)
    {
    }

    /** One shard's candidate count and fitted score moments. */
    struct ShardModel
    {
        /** Estimated number of scoring documents on the shard. */
        double candidates = 0.0;

        /** Mixture mean of the score population. */
        double mean = 0.0;

        /** Mixture variance of the score population. */
        double variance = 0.0;
    };

    /** Fit the per-shard score models for a (weighted) query. */
    std::vector<ShardModel>
    fitShards(const std::vector<WeightedTerm> &terms) const;

    /** Uniform-weight convenience. */
    std::vector<ShardModel>
    fitShards(const std::vector<TermId> &terms) const;

    /**
     * Expected per-shard document counts among the global top-@p
     * target results: solves for the score threshold s_c with
     * sum_i n_i * P(S_i > s_c) = target, then returns each shard's
     * n_i * P(S_i > s_c). Entries sum to ~target (less when the whole
     * collection has fewer candidates).
     */
    std::vector<double>
    expectedTopContributions(const std::vector<WeightedTerm> &terms,
                             double target) const;

    /** Uniform-weight convenience. */
    std::vector<double>
    expectedTopContributions(const std::vector<TermId> &terms,
                             double target) const;

  private:
    const ShardedIndex *index_;
    bool unionSemantics_;
};

} // namespace cottage

#endif // COTTAGE_POLICY_TAILY_ESTIMATOR_H
