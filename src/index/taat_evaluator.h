/**
 * @file
 * Term-at-a-time (TAAT) evaluation: the classic alternative to DAAT —
 * process one posting list at a time into an accumulator array, then
 * extract the top-K. No pruning; work equals the exhaustive DAAT's
 * postings but with different constants (sequential list scans, no
 * multi-cursor merge). Included both as a third independent oracle for
 * the rank-safety property tests and because older engines (and some
 * of the paper's related work [35]) evaluate this way.
 */

#ifndef COTTAGE_INDEX_TAAT_EVALUATOR_H
#define COTTAGE_INDEX_TAAT_EVALUATOR_H

#include "index/evaluator.h"

namespace cottage {

/** Accumulator-array term-at-a-time scoring. */
class TaatEvaluator : public Evaluator
{
  public:
    const char *name() const override { return "taat"; }

    using Evaluator::search;

    SearchResult search(const InvertedIndex &index,
                        const std::vector<WeightedTerm> &terms,
                        std::size_t k, uint64_t maxScoredDocs,
                        DocRange range) const override;
};

} // namespace cottage

#endif // COTTAGE_INDEX_TAAT_EVALUATOR_H
