#include "index/taat_evaluator.h"

#include <vector>

namespace cottage {

SearchResult
TaatEvaluator::search(const InvertedIndex &index,
                      const std::vector<WeightedTerm> &terms,
                      std::size_t k, uint64_t maxScoredDocs,
                      DocRange range) const
{
    SearchResult result;

    // Dense accumulators; a touched-list keeps extraction proportional
    // to candidates rather than to the shard size.
    std::vector<double> accumulators(index.numDocs(), 0.0);
    std::vector<LocalDocId> touched;

    for (const WeightedTerm &wt : terms) {
        const PostingList *list = index.postings(wt.term);
        if (list == nullptr)
            continue;
        const double idf = index.idf(wt.term) * wt.weight;
        const std::size_t first = slicePosition(*list, range.begin);
        for (std::size_t p = first; p < list->size(); ++p) {
            const Posting &posting = list->postings[p];
            if (posting.doc >= range.end)
                break;
            if (accumulators[posting.doc] == 0.0)
                touched.push_back(posting.doc);
            accumulators[posting.doc] += index.scorePosting(idf, posting);
            ++result.work.postingsScored;
        }
    }

    // Anytime cap: TAAT evaluates candidates during extraction, so the
    // cap truncates the touched-list walk in its deterministic
    // first-touch order.
    TopKHeap heap(k);
    for (LocalDocId doc : touched) {
        if (result.work.docsScored >= maxScoredDocs) {
            result.work.truncated = true;
            break;
        }
        ++result.work.docsScored;
        if (heap.push({index.globalDoc(doc), accumulators[doc]}))
            ++result.work.heapInsertions;
    }
    result.topK = heap.extractSorted();
    return result;
}

} // namespace cottage
