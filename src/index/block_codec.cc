/**
 * @file
 * StreamVByte codec implementation. This is the ONLY translation unit
 * in the tree allowed to use vendor SIMD intrinsics (cottage_lint rule
 * D6): the SSSE3 `pshufb` group kernel lives behind
 * COTTAGE_SIMD_STREAMVBYTE, and the portable scalar kernel decodes the
 * exact same bytes to the exact same values, so nothing downstream can
 * observe which one ran except through wall time.
 */

#include "index/block_codec.h"

#include <array>
#include <cstring>

#include "util/logging.h"

#if defined(COTTAGE_SIMD_STREAMVBYTE) && defined(__SSSE3__)
#include <tmmintrin.h>
#define COTTAGE_STREAMVBYTE_SSSE3 1
#endif

namespace cottage {

namespace {

/**
 * Per-control-byte decode tables. For control byte c, lanes i hold
 * length code (c >> 2i) & 3 (value byte count minus one):
 *  - len[c]: total data bytes the four lanes consume;
 *  - shuffle[c]: a 16-byte pshufb mask gathering each lane's bytes
 *    from the data window into its 4-byte output slot, 0x80 (= "write
 *    zero") elsewhere. The scalar kernel uses only len[].
 */
struct DecodeTables
{
    std::array<std::array<uint8_t, 16>, 256> shuffle{};
    std::array<uint8_t, 256> len{};
};

constexpr DecodeTables
makeDecodeTables()
{
    DecodeTables tables{};
    for (unsigned c = 0; c < 256; ++c) {
        uint8_t pos = 0;
        for (unsigned lane = 0; lane < 4; ++lane) {
            const unsigned bytes = ((c >> (2 * lane)) & 3u) + 1;
            for (unsigned b = 0; b < 4; ++b) {
                tables.shuffle[c][4 * lane + b] =
                    b < bytes ? pos++ : uint8_t{0x80};
            }
        }
        tables.len[c] = pos;
    }
    return tables;
}

constexpr DecodeTables kTables = makeDecodeTables();

/** Value masks per 2-bit length code (1..4 significant bytes). */
constexpr std::array<uint32_t, 4> kValueMask = {0xffu, 0xffffu,
                                                0xffffffu, 0xffffffffu};

/**
 * Scalar group kernel: decode four values at @p data according to
 * @p control. Byte-order independent (explicit LSB-first assembly);
 * always reads four 4-byte windows, so the caller guarantees
 * kStreamVBytePadding readable bytes past the logical stream end.
 * Returns the data bytes consumed (== kTables.len[control]).
 */
inline std::size_t
decodeGroupScalar(uint8_t control, const uint8_t *data, uint32_t *out)
{
    std::size_t consumed = 0;
    for (unsigned lane = 0; lane < 4; ++lane) {
        const unsigned code = (control >> (2 * lane)) & 3u;
        const uint8_t *p = data + consumed;
        const uint32_t window =
            static_cast<uint32_t>(p[0]) |
            (static_cast<uint32_t>(p[1]) << 8) |
            (static_cast<uint32_t>(p[2]) << 16) |
            (static_cast<uint32_t>(p[3]) << 24);
        out[lane] = window & kValueMask[code];
        consumed += code + 1;
    }
    return consumed;
}

#ifdef COTTAGE_STREAMVBYTE_SSSE3
/**
 * SSSE3 group kernel: one unaligned 16-byte load, one pshufb, one
 * store — four values per step, no data-dependent branches. Output is
 * bit-identical to decodeGroupScalar by construction of the shuffle
 * table (same LSB-first layout, zeros shuffled into the high bytes).
 */
inline std::size_t
decodeGroupSimd(uint8_t control, const uint8_t *data, uint32_t *out)
{
    const __m128i window =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(data));
    const __m128i mask = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(kTables.shuffle[control].data()));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                     _mm_shuffle_epi8(window, mask));
    return kTables.len[control];
}
#endif

} // namespace

void
streamVByteEncode(const uint32_t *values, std::size_t n,
                  std::vector<uint8_t> &out)
{
    const std::size_t controlBase = out.size();
    out.resize(out.size() + streamVByteControlBytes(n), 0);
    for (std::size_t i = 0; i < n; ++i) {
        const uint32_t value = values[i];
        // Length code = significant bytes - 1, branch-free.
        const unsigned code = (value >= (1u << 8)) +
                              (value >= (1u << 16)) +
                              (value >= (1u << 24));
        out[controlBase + i / 4] |=
            static_cast<uint8_t>(code << (2 * (i % 4)));
        out.push_back(static_cast<uint8_t>(value));
        if (code >= 1)
            out.push_back(static_cast<uint8_t>(value >> 8));
        if (code >= 2)
            out.push_back(static_cast<uint8_t>(value >> 16));
        if (code >= 3)
            out.push_back(static_cast<uint8_t>(value >> 24));
    }
}

namespace {

/**
 * Bounds pre-pass shared by the decode entry points: the control
 * region alone fixes the data length, so one check up front covers the
 * whole branch-free decode loop. The tail control byte's unused (zero)
 * codes are excluded — the encoder wrote no data bytes for them.
 */
std::size_t
checkedDataLength(const uint8_t *in, std::size_t avail, std::size_t n,
                  std::size_t controlBytes)
{
    COTTAGE_CHECK_MSG(controlBytes <= avail,
                      "truncated streamvbyte control stream");
    std::size_t dataLength = 0;
    const std::size_t fullGroups = n / 4;
    for (std::size_t g = 0; g < fullGroups; ++g)
        dataLength += kTables.len[in[g]];
    for (std::size_t i = 4 * fullGroups; i < n; ++i)
        dataLength += ((in[i / 4] >> (2 * (i % 4))) & 3u) + 1;
    COTTAGE_CHECK_MSG(dataLength <= avail - controlBytes,
                      "truncated streamvbyte data stream");
    return dataLength;
}

} // namespace

std::size_t
streamVByteDecode(const uint8_t *in, std::size_t avail, std::size_t n,
                  uint32_t *out)
{
    if (n == 0)
        return 0;
    const std::size_t controlBytes = streamVByteControlBytes(n);
    const std::size_t dataLength =
        checkedDataLength(in, avail, n, controlBytes);

    const uint8_t *data = in + controlBytes;
    uint32_t *dst = out;
    // The group kernel always writes four lanes; the tail group spills
    // into the scratch capacity streamVByteDecodeCapacity() reserves,
    // and its over-advanced data pointer is discarded (the return
    // value uses the exact pre-pass length).
    for (std::size_t g = 0; g < controlBytes; ++g) {
#ifdef COTTAGE_STREAMVBYTE_SSSE3
        data += decodeGroupSimd(in[g], data, dst);
#else
        data += decodeGroupScalar(in[g], data, dst);
#endif
        dst += 4;
    }
    return controlBytes + dataLength;
}

std::size_t
streamVByteDecodeDeltas(const uint8_t *in, std::size_t avail,
                        std::size_t n, uint32_t prev, uint32_t *out)
{
    if (n == 0)
        return 0;
    const std::size_t controlBytes = streamVByteControlBytes(n);
    const std::size_t dataLength =
        checkedDataLength(in, avail, n, controlBytes);

    const uint8_t *data = in + controlBytes;
    uint32_t *dst = out;
    // Same tail-group spill rules as streamVByteDecode; the garbage
    // lanes past n also pollute the running prefix, but the loop ends
    // there and the caller never reads them.
#ifdef COTTAGE_STREAMVBYTE_SSSE3
    const __m128i ones = _mm_set1_epi32(1);
    __m128i running = _mm_set1_epi32(static_cast<int>(prev));
    for (std::size_t g = 0; g < controlBytes; ++g) {
        const __m128i window =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(data));
        const __m128i mask = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(kTables.shuffle[in[g]].data()));
        // In-register inclusive prefix sum of (gap + 1) over the four
        // lanes, then shift the group's total into every lane for the
        // next group — two shifted adds instead of four dependent
        // scalar adds (wrap-around semantics are identical).
        __m128i v = _mm_add_epi32(_mm_shuffle_epi8(window, mask), ones);
        v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
        v = _mm_add_epi32(v, _mm_slli_si128(v, 8));
        v = _mm_add_epi32(v, running);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst), v);
        running = _mm_shuffle_epi32(v, 0xFF);
        data += kTables.len[in[g]];
        dst += 4;
    }
#else
    for (std::size_t g = 0; g < controlBytes; ++g) {
        data += decodeGroupScalar(in[g], data, dst);
        for (unsigned lane = 0; lane < 4; ++lane) {
            prev += dst[lane] + 1; // uint32 wrap matches the SIMD lanes
            dst[lane] = prev;
        }
        dst += 4;
    }
#endif
    return controlBytes + dataLength;
}

bool
streamVByteUsesSimd()
{
#ifdef COTTAGE_STREAMVBYTE_SSSE3
    return true;
#else
    return false;
#endif
}

} // namespace cottage
