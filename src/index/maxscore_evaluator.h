/**
 * @file
 * MaxScore dynamic pruning (Turtle & Flood [36]).
 *
 * Rank-safe: returns exactly the exhaustive top-K (tie-breaking
 * included) while skipping documents that provably cannot enter it.
 * The skipping is what makes per-query service time hard to predict
 * from posting-list length alone — the phenomenon Cottage's latency
 * predictor (Table II features) is built to capture.
 */

#ifndef COTTAGE_INDEX_MAXSCORE_EVALUATOR_H
#define COTTAGE_INDEX_MAXSCORE_EVALUATOR_H

#include "index/evaluator.h"

namespace cottage {

/** Document-at-a-time MaxScore with essential/non-essential lists. */
class MaxScoreEvaluator : public Evaluator
{
  public:
    const char *name() const override { return "maxscore"; }

    using Evaluator::search;

    SearchResult search(const InvertedIndex &index,
                        const std::vector<WeightedTerm> &terms,
                        std::size_t k, uint64_t maxScoredDocs,
                        DocRange range) const override;
};

} // namespace cottage

#endif // COTTAGE_INDEX_MAXSCORE_EVALUATOR_H
