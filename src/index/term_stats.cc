#include "index/term_stats.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "index/top_k.h"
#include "stats/summary.h"
#include "util/logging.h"

namespace cottage {

namespace {

/** Largest k-th value of a score vector (smallest value when short). */
double
kthLargest(std::vector<double> scores, std::size_t k)
{
    COTTAGE_CHECK(!scores.empty());
    if (scores.size() <= k)
        return *std::min_element(scores.begin(), scores.end());
    std::nth_element(scores.begin(),
                     scores.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     scores.end(), std::greater<double>());
    return scores[k - 1];
}

} // namespace

TermStatsStore::TermStatsStore(const InvertedIndex &index, std::size_t k)
    : k_(k)
{
    COTTAGE_CHECK_MSG(k >= 1, "term stats need k >= 1");
    stats_.reserve(index.numTerms() * 2);

    std::vector<double> scores; // DocId-ordered, reused across terms
    std::vector<double> sorted;
    for (const PostingList &list : index.allPostings()) {
        const double termIdf = index.idf(list.term);

        scores.clear();
        scores.reserve(list.size());
        TopKHeap heap(k);
        uint64_t insertions = 0;
        for (const Posting &posting : list.postings) {
            const double s = index.scorePosting(termIdf, posting);
            scores.push_back(s);
            if (heap.push({index.globalDoc(posting.doc), s}))
                ++insertions;
        }

        TermStats ts;
        ts.postingLength = static_cast<double>(scores.size());
        ts.idf = termIdf;
        ts.estimatedMaxScore = index.scorer().staticUpperBound(termIdf);
        ts.docsEverInTopK = static_cast<double>(insertions);

        sorted = scores;
        std::sort(sorted.begin(), sorted.end(), std::less<double>());
        ts.firstQuartile = percentileSorted(sorted, 0.25);
        ts.median = percentileSorted(sorted, 0.5);
        ts.thirdQuartile = percentileSorted(sorted, 0.75);
        ts.meanScore = mean(scores);
        ts.geoMeanScore = geometricMean(scores);
        ts.harmMeanScore = harmonicMean(scores);
        ts.scoreVariance = variance(scores);
        ts.maxScore = sorted.back();
        ts.kthScore = kthLargest(scores, k);

        // Pruning-behaviour features over the DocId-ordered sequence.
        std::size_t maxima = 0;
        std::size_t maximaAboveMean = 0;
        for (std::size_t i = 0; i < scores.size(); ++i) {
            const bool leftOk = i == 0 || scores[i] > scores[i - 1];
            const bool rightOk =
                i + 1 == scores.size() || scores[i] > scores[i + 1];
            if (scores.size() > 1 && leftOk && rightOk) {
                ++maxima;
                if (scores[i] > ts.meanScore)
                    ++maximaAboveMean;
            }
        }
        ts.localMaxima = static_cast<double>(maxima);
        ts.localMaximaAboveMean = static_cast<double>(maximaAboveMean);

        std::size_t atMax = 0;
        std::size_t nearMax = 0;
        std::size_t nearKth = 0;
        for (double s : scores) {
            if (s == ts.maxScore)
                ++atMax;
            if (s >= 0.95 * ts.maxScore)
                ++nearMax;
            if (s >= 0.95 * ts.kthScore)
                ++nearKth;
        }
        ts.numMaxScore = static_cast<double>(atMax);
        ts.docsNearMax = static_cast<double>(nearMax);
        ts.docsNearKth = static_cast<double>(nearKth);

        stats_.emplace(list.term, ts);
    }
}

const TermStats *
TermStatsStore::get(TermId term) const
{
    const auto it = stats_.find(term);
    return it == stats_.end() ? nullptr : &it->second;
}

} // namespace cottage
