/**
 * @file
 * One shard's inverted index: posting lists, document metadata, and the
 * shard-local BM25 machinery (sharing global collection statistics so
 * scores merge exactly across shards).
 */

#ifndef COTTAGE_INDEX_INVERTED_INDEX_H
#define COTTAGE_INDEX_INVERTED_INDEX_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/block_max.h"
#include "index/bm25.h"
#include "index/collection_stats.h"
#include "index/postings.h"
#include "text/corpus.h"
#include "text/types.h"

namespace cottage {

/**
 * Immutable per-shard inverted index.
 */
class InvertedIndex
{
  public:
    /**
     * Build the index over a subset of a corpus.
     *
     * @param corpus The full corpus.
     * @param docIds Global ids of the documents assigned to this shard.
     * @param stats Shared global collection statistics.
     * @param params BM25 parameters.
     * @param blockSize Postings per block in the block-max skip layer.
     */
    InvertedIndex(const Corpus &corpus, const std::vector<DocId> &docIds,
                  std::shared_ptr<const CollectionStats> stats,
                  Bm25Params params = {}, uint32_t blockSize = 128);

    /** Posting list for a term, or nullptr when the shard lacks it. */
    const PostingList *postings(TermId term) const;

    /**
     * Block-max list for a term, or nullptr when the shard lacks it.
     * Built at indexing time alongside the flat list; block maxima are
     * unweighted (queries scale them by the term weight).
     */
    const BlockMaxPostingList *blockMax(TermId term) const;

    /** Postings per block in the block-max layer. */
    uint32_t blockSize() const { return blockSize_; }

    /** Number of documents on this shard. */
    uint32_t numDocs() const { return static_cast<uint32_t>(lengths_.size()); }

    /** Token length of a shard-local document. */
    uint32_t docLength(LocalDocId local) const { return lengths_[local]; }

    /** Global id of a shard-local document. */
    DocId globalDoc(LocalDocId local) const { return globalIds_[local]; }

    /** Number of distinct terms present on this shard. */
    std::size_t numTerms() const { return lists_.size(); }

    /** The scorer (global statistics, shared across shards). */
    const Bm25 &scorer() const { return scorer_; }

    /** Global IDF of a term (from the shared collection statistics). */
    double idf(TermId term) const;

    /**
     * Exact per-shard upper bound of a term's BM25 contribution: the
     * max over this shard's postings, computed at build time. Returns
     * 0 for absent terms. This is what MaxScore/WAND prune with.
     */
    double maxScore(TermId term) const;

    /** Total number of postings on this shard. */
    uint64_t totalPostings() const { return totalPostings_; }

    /** All posting lists (arbitrary order); used by index-time scans. */
    const std::vector<PostingList> &allPostings() const { return lists_; }

    /** Index storage accounting (raw vs VByte-compressed postings). */
    struct Footprint
    {
        /** Flat in-memory posting bytes (8 per posting). */
        std::size_t rawPostingBytes = 0;

        /** Bytes the postings take delta-gap VByte compressed. */
        std::size_t compressedPostingBytes = 0;

        /** Document-metadata bytes (lengths + global id map). */
        std::size_t docTableBytes = 0;

        /**
         * Block-max skip layer, total: per-block metadata plus the
         * StreamVByte payload streams (== blockMetadataBytes +
         * blockPayloadBytes).
         */
        std::size_t blockMaxBytes = 0;

        /** Per-block skip metadata (lastDoc/maxScore/offset/count). */
        std::size_t blockMetadataBytes = 0;

        /** StreamVByte block payloads (control + data + padding). */
        std::size_t blockPayloadBytes = 0;
    };

    /**
     * Compute the storage footprint. Compresses every list once, so
     * this is an O(total postings) scan — for reports, not hot paths.
     */
    Footprint footprint() const;

    /** Score one posting of a term (helper shared by evaluators). */
    double
    scorePosting(double termIdf, const Posting &posting) const
    {
        return scorer_.score(termIdf, posting.freq, lengths_[posting.doc]);
    }

  private:
    std::shared_ptr<const CollectionStats> stats_;
    Bm25 scorer_;
    std::vector<uint32_t> lengths_;
    std::vector<DocId> globalIds_;
    std::unordered_map<TermId, uint32_t> termSlot_;
    std::vector<PostingList> lists_;
    std::vector<BlockMaxPostingList> blockLists_;
    std::vector<double> maxScores_;
    uint32_t blockSize_ = 128;
    uint64_t totalPostings_ = 0;
};

} // namespace cottage

#endif // COTTAGE_INDEX_INVERTED_INDEX_H
