/**
 * @file
 * Block-max posting lists: the skip structure behind Block-Max WAND
 * and Block-Max MaxScore.
 *
 * A list is cut into fixed-size blocks of postings. Per block we keep
 * the last document id, the maximum (unweighted) BM25 contribution of
 * any posting in the block, and the byte offset of the block's payload
 * inside one StreamVByte stream (block_codec.h): the block's doc-id
 * deltas as one StreamVByte sequence, its frequencies as a second.
 * The delta-gap chain restarts at every block boundary, so a seek can
 * hop over whole blocks by metadata alone and decode only the single
 * block that contains its target — and that decode is a handful of
 * branch-free shuffle steps into the cursor's fixed buffer, not a
 * byte-at-a-time VByte walk (see DESIGN.md §5e/§5g and the cost audit
 * in docs/cycles.md).
 */

#ifndef COTTAGE_INDEX_BLOCK_MAX_H
#define COTTAGE_INDEX_BLOCK_MAX_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "index/postings.h"
#include "util/logging.h"

namespace cottage {

/**
 * Block-level I/O accounting shared by all cursors of one evaluation;
 * the evaluator folds it into its SearchWork when the query finishes.
 */
struct BlockIo
{
    /** Blocks decoded (each decode is one whole-block unpack). */
    uint64_t blocksDecoded = 0;

    /** Blocks skipped without decoding, via lastDoc metadata alone. */
    uint64_t blocksSkipped = 0;

    /** Postings passed over by seeks without being scored. */
    uint64_t docsSkipped = 0;
};

/**
 * One term's postings, StreamVByte-compressed in fixed-size blocks
 * with per-block skip metadata. Immutable once built.
 */
class BlockMaxPostingList
{
  public:
    /** Per-block skip metadata. */
    struct Block
    {
        /** Last (largest) document id in the block. */
        LocalDocId lastDoc = 0;

        /** Max unweighted BM25 contribution over the block's postings. */
        double maxScore = 0.0;

        /** Byte offset of the block's payload inside the list stream. */
        uint32_t offset = 0;

        /** Number of postings in the block (== blockSize except last). */
        uint32_t count = 0;
    };

    BlockMaxPostingList() = default;

    /**
     * Build from a flat list (ascending doc ids).
     *
     * @param list The uncompressed postings.
     * @param blockSize Postings per block (>= 1).
     * @param score Scores one posting; evaluated once per posting at
     *        build time to fill the per-block maxima. Bounds are stored
     *        unweighted and scaled by the query weight at search time.
     */
    BlockMaxPostingList(const PostingList &list, uint32_t blockSize,
                        const std::function<double(const Posting &)> &score);

    TermId term() const { return term_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    uint32_t blockSize() const { return blockSize_; }
    std::size_t numBlocks() const { return blocks_.size(); }
    const Block &block(std::size_t b) const { return blocks_[b]; }

    /** Whole-list score upper bound (max over the block maxima). */
    double maxScore() const { return listMaxScore_; }

    /** Skip-metadata plus compressed-payload footprint in bytes. */
    std::size_t
    bytes() const
    {
        return metadataBytes() + payloadBytes();
    }

    /** Per-block skip metadata (Block structs) in bytes. */
    std::size_t
    metadataBytes() const
    {
        return blocks_.size() * sizeof(Block);
    }

    /** StreamVByte payload bytes (control + data + stream padding). */
    std::size_t
    payloadBytes() const
    {
        return bytes_.size();
    }

    /**
     * Decode block @p b's document ids (delta-decoded to absolute
     * LocalDocIds) into @p docs, which must have capacity
     * streamVByteDecodeCapacity(block(b).count).
     *
     * @return The absolute byte offset of the block's frequency
     *         sequence, to pass to decodeBlockFreqs(). Returning it
     *         (rather than recomputing) lets cursors decode
     *         frequencies lazily — most decoded blocks are scanned for
     *         doc ids but never scored.
     */
    std::size_t decodeBlockDocs(std::size_t b, uint32_t *docs) const;

    /**
     * Decode block @p b's frequencies into @p freqs (same capacity
     * contract as decodeBlockDocs). @p freqOffset must be the value
     * decodeBlockDocs(b, ...) returned.
     */
    void decodeBlockFreqs(std::size_t b, std::size_t freqOffset,
                          uint32_t *freqs) const;

    /** Decode block @p b into @p out (overwritten, sized to the block). */
    void decodeBlock(std::size_t b, std::vector<Posting> &out) const;

  private:
    TermId term_ = invalidTerm;
    std::size_t count_ = 0;
    uint32_t blockSize_ = 0;
    double listMaxScore_ = 0.0;
    std::vector<Block> blocks_;
    std::vector<uint8_t> bytes_;
};

/**
 * Read cursor over a block-max list with both *deep* positioning
 * (decode a block, walk its postings) and *shallow* positioning
 * (move the block pointer by metadata alone, never decoding). The
 * block-max evaluators interleave the two: shallow moves answer
 * "could anything here still matter?", deep moves score what does.
 *
 * The cursor position is (block, posting-in-block). Deep positioning
 * is decode-whole-block-then-scan: the first deep access after a
 * shallow move unpacks the block's doc ids into a fixed decode buffer
 * in a few branch-free group steps, and every subsequent doc
 * comparison is a plain array read. Frequencies decode lazily, only
 * when a posting is actually scored.
 *
 * The decode buffer (doc ids and freqs back to back) is ONE heap
 * allocation sized at construction and never resized. Keeping it out
 * of the object proper matters: the evaluators walk arrays of cursors
 * every round, and a cursor whose metadata fits in ~1.5 cache lines
 * sorts/bounds/seeks materially faster than one bloated by an inline
 * buffer (measured ~10% on the full bench).
 */
/**
 * Per-query scratch-slab size (uint32 slots) the block-max evaluators
 * keep on the stack: queries whose cursors' combined scratchSlots()
 * fit (boundary inclusive) decode into a stack array, anything larger
 * spills to one heap slab. Shared between bmw and bmm — and exported —
 * so the stack/heap boundary is a single number tests can target
 * exactly (tests/test_blockmax.cc pins both sides of it).
 */
constexpr std::size_t kEvaluatorStackSlabSlots = 2048;

class BlockMaxCursor
{
  public:
    /** @param io Shared per-query I/O counters (may be nullptr). */
    explicit BlockMaxCursor(const BlockMaxPostingList &list,
                            BlockIo *io = nullptr);

    /**
     * Construct with caller-owned decode scratch instead of a private
     * allocation. @p scratch must hold scratchSlots(list) uint32_ts and
     * outlive the cursor (moves included). The evaluators use this to
     * carve every cursor's buffer out of ONE per-query slab — per-list
     * heap allocations were a measurable share of short-query latency.
     */
    BlockMaxCursor(const BlockMaxPostingList &list, BlockIo *io,
                   uint32_t *scratch);

    /** Scratch slots (doc ids + freqs halves) a cursor on @p list needs. */
    static std::size_t scratchSlots(const BlockMaxPostingList &list);

    // docs_/freqs_ point into heap storage (the private buffer_ or a
    // caller slab), which is stable across moves, so the defaulted
    // moves stay valid; copies would need re-anchoring and nothing
    // needs them, so they are disallowed.
    BlockMaxCursor(BlockMaxCursor &&other) noexcept = default;
    BlockMaxCursor &operator=(BlockMaxCursor &&other) noexcept = default;
    BlockMaxCursor(const BlockMaxCursor &) = delete;
    BlockMaxCursor &operator=(const BlockMaxCursor &) = delete;
    ~BlockMaxCursor() = default;

    /**
     * True when the cursor has moved past the last posting. The block
     * count is cached at construction: this predicate runs inside the
     * evaluators' per-round sort keys, where an indirection through
     * the list's block vector would cost a dependent load per call.
     */
    bool
    exhausted() const
    {
        return blockIdx_ >= numBlocks_;
    }

    /**
     * Current document id; decodes the current block if needed. The
     * id is cached so the hot path (evaluators compare doc() inside
     * sort comparators, many times per pivot round) is one branch and
     * one member read — decode happens only right after a block move.
     */
    LocalDocId
    doc()
    {
        if (docValid_)
            return curDoc_;
        ensureDecoded();
        curDoc_ = docs_[pos_];
        docValid_ = true;
        return curDoc_;
    }

    /** Current posting; decodes doc ids and (lazily) freqs if needed. */
    const Posting &
    posting()
    {
        posting_ = {doc(), freq()};
        return posting_;
    }

    /**
     * Current term frequency; decodes the freq sequence lazily. The
     * evaluators' scoring loops use this (with the doc id they already
     * hold) instead of posting() — the posting_ member round-trip is
     * measurable at hundreds of scored postings per query.
     */
    uint32_t
    freq()
    {
        ensureDecoded();
        if (!freqsDecoded_)
            decodeFreqs();
        return freqs_[pos_];
    }

    /**
     * Move to the next posting (current block must be decoded). Inline
     * on purpose: the evaluators call this once per scored posting, and
     * the in-block case is a bump plus one cached array read.
     */
    void
    advance()
    {
        COTTAGE_CHECK_MSG(decodedBlock_ ==
                              static_cast<std::ptrdiff_t>(blockIdx_),
                          "advance on an undecoded block");
        ++pos_;
        if (pos_ < count_) {
            curDoc_ = docs_[pos_];
            docValid_ = true;
        } else {
            ++blockIdx_;
            pos_ = 0;
            docValid_ = false;
            refreshBlockMeta();
        }
    }

    /** Deep seek: first posting with doc >= target, counting skips. */
    void
    seek(LocalDocId target)
    {
        while (!exhausted() && blockLastDoc() < target)
            skipCurrentBlock();
        if (exhausted())
            return;
        ensureDecoded();
        // target <= lastDoc, so the scan always lands inside the block.
        // Hybrid probe: the typical in-block hop is a handful of
        // postings, where a predictable forward scan beats lower_bound's
        // mispredicted halving branches — but a hop that survives 16
        // linear steps is usually aimed deep into the block, where
        // binary search wins. The skip charge is it-begin either way.
        const uint32_t *begin = docs_ + pos_;
        const uint32_t *it = begin;
        while (*it < target) {
            if (++it - begin == 16) {
                const uint32_t *end = docs_ + count_;
                it = std::lower_bound(it, end, target);
                break;
            }
        }
        if (io_ != nullptr)
            io_->docsSkipped += static_cast<uint64_t>(it - begin);
        pos_ = static_cast<std::size_t>(it - docs_);
        curDoc_ = *it;
        docValid_ = true;
    }

    /**
     * Shallow seek: move the block pointer to the first block whose
     * lastDoc >= target, without decoding anything. Skipped blocks are
     * charged to BlockIo exactly as in a deep seek.
     */
    void
    shallowSeek(LocalDocId target)
    {
        while (!exhausted() && blockLastDoc() < target)
            skipCurrentBlock();
    }

    /**
     * Position at the first posting with doc >= target WITHOUT
     * charging skip counters: places a cursor at the start of a
     * document slice, where the skipped prefix belongs to other
     * workers (see DocRange in evaluator.h). The landing-block decode
     * IS charged — it is real work this worker performs (and it may be
     * a decode the sequential pass would have shallow-skipped; the
     * slice sum's small block-boundary surplus is deterministic).
     */
    void
    positionAt(LocalDocId target)
    {
        while (!exhausted() && blockLastDoc() < target) {
            ++blockIdx_;
            pos_ = 0;
            docValid_ = false;
            refreshBlockMeta();
        }
        if (exhausted() || target == 0)
            return;
        ensureDecoded();
        // target <= lastDoc, so the probe lands inside the block.
        const uint32_t *it =
            std::lower_bound(docs_ + pos_, docs_ + count_, target);
        pos_ = static_cast<std::size_t>(it - docs_);
        curDoc_ = *it;
        docValid_ = true;
    }

    /**
     * Last document of the current block (metadata only). Cached on
     * block moves: the shallow-bound and block-skip loops read this
     * every round, and the cache turns a double indirection through
     * the list's block vector into a member load.
     */
    LocalDocId
    blockLastDoc() const
    {
        return curLastDoc_;
    }

    /** Unweighted score bound of the current block (cached likewise). */
    double
    blockMaxScore() const
    {
        return curBlockMax_;
    }

  private:
    /**
     * Make the current block's doc ids available in docs_. Inline
     * fast path: when the block is already decoded this is a single
     * compare. The decode itself (and the exhaustion check guarding
     * it) lives out of line in decodeCurrentBlock().
     */
    void
    ensureDecoded()
    {
        if (decodedBlock_ != static_cast<std::ptrdiff_t>(blockIdx_))
            decodeCurrentBlock();
    }

    void decodeCurrentBlock();
    void decodeFreqs();

    /** Drop the rest of the current block, charging the skips. */
    void
    skipCurrentBlock()
    {
        if (io_ != nullptr) {
            io_->docsSkipped += curBlockCount_ - pos_;
            if (decodedBlock_ != static_cast<std::ptrdiff_t>(blockIdx_))
                ++io_->blocksSkipped;
        }
        ++blockIdx_;
        pos_ = 0;
        docValid_ = false;
        refreshBlockMeta();
    }

    /** Refresh the cached block metadata after a block move. */
    void
    refreshBlockMeta()
    {
        if (blockIdx_ < numBlocks_) {
            const BlockMaxPostingList::Block &b = list_->block(blockIdx_);
            curLastDoc_ = b.lastDoc;
            curBlockMax_ = b.maxScore;
            curBlockCount_ = b.count;
        }
    }

    const BlockMaxPostingList *list_;
    BlockIo *io_;
    std::size_t numBlocks_ = 0;
    std::size_t blockIdx_ = 0;
    std::size_t pos_ = 0;
    std::size_t count_ = 0;
    std::ptrdiff_t decodedBlock_ = -1;
    std::size_t freqOffset_ = 0;
    bool freqsDecoded_ = false;
    LocalDocId curDoc_ = 0;
    bool docValid_ = false;
    LocalDocId curLastDoc_ = 0;
    uint32_t curBlockCount_ = 0;
    double curBlockMax_ = 0.0;
    Posting posting_{};

    // Decode storage, doc ids first then freqs; each half has
    // streamVByteDecodeCapacity(blockSize) slots because group decodes
    // store four lanes at a time. buffer_ owns it for standalone
    // cursors and stays null when the caller provided scratch. Never
    // value-initialized (for_overwrite): a block decode always writes
    // a slot before any read, and cursors are built per query, so the
    // memset would be pure hot-path waste.
    std::unique_ptr<uint32_t[]> buffer_;
    uint32_t *docs_ = nullptr;
    uint32_t *freqs_ = nullptr;
};

} // namespace cottage

#endif // COTTAGE_INDEX_BLOCK_MAX_H
