/**
 * @file
 * Block-max posting lists: the skip structure behind Block-Max WAND
 * and Block-Max MaxScore.
 *
 * A list is cut into fixed-size blocks of postings. Per block we keep
 * the last document id, the maximum (unweighted) BM25 contribution of
 * any posting in the block, and the byte offset of the block inside a
 * VByte-compressed stream. The delta-gap chain restarts at every block
 * boundary, so a seek can hop over whole blocks by metadata alone and
 * decode only the single block that contains its target. This is the
 * structure production engines use to turn whole-list score bounds
 * into much tighter per-block bounds (see DESIGN.md §5e).
 */

#ifndef COTTAGE_INDEX_BLOCK_MAX_H
#define COTTAGE_INDEX_BLOCK_MAX_H

#include <cstdint>
#include <functional>
#include <vector>

#include "index/postings.h"

namespace cottage {

/**
 * Block-level I/O accounting shared by all cursors of one evaluation;
 * the evaluator folds it into its SearchWork when the query finishes.
 */
struct BlockIo
{
    /** Blocks decoded (each decode is one VByte scan of <= blockSize). */
    uint64_t blocksDecoded = 0;

    /** Blocks skipped without decoding, via lastDoc metadata alone. */
    uint64_t blocksSkipped = 0;

    /** Postings passed over by seeks without being scored. */
    uint64_t docsSkipped = 0;
};

/**
 * One term's postings, VByte-compressed in fixed-size blocks with
 * per-block skip metadata. Immutable once built.
 */
class BlockMaxPostingList
{
  public:
    /** Per-block skip metadata. */
    struct Block
    {
        /** Last (largest) document id in the block. */
        LocalDocId lastDoc = 0;

        /** Max unweighted BM25 contribution over the block's postings. */
        double maxScore = 0.0;

        /** Byte offset of the block's stream inside the list stream. */
        uint32_t offset = 0;

        /** Number of postings in the block (== blockSize except last). */
        uint32_t count = 0;
    };

    BlockMaxPostingList() = default;

    /**
     * Build from a flat list (ascending doc ids).
     *
     * @param list The uncompressed postings.
     * @param blockSize Postings per block (>= 1).
     * @param score Scores one posting; evaluated once per posting at
     *        build time to fill the per-block maxima. Bounds are stored
     *        unweighted and scaled by the query weight at search time.
     */
    BlockMaxPostingList(const PostingList &list, uint32_t blockSize,
                        const std::function<double(const Posting &)> &score);

    TermId term() const { return term_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    uint32_t blockSize() const { return blockSize_; }
    std::size_t numBlocks() const { return blocks_.size(); }
    const Block &block(std::size_t b) const { return blocks_[b]; }

    /** Whole-list score upper bound (max over the block maxima). */
    double maxScore() const { return listMaxScore_; }

    /** Skip-metadata plus compressed-stream footprint in bytes. */
    std::size_t
    bytes() const
    {
        return blocks_.size() * sizeof(Block) + bytes_.size();
    }

    /** Decode block @p b into @p out (overwritten, sized to the block). */
    void decodeBlock(std::size_t b, std::vector<Posting> &out) const;

  private:
    TermId term_ = invalidTerm;
    std::size_t count_ = 0;
    uint32_t blockSize_ = 0;
    double listMaxScore_ = 0.0;
    std::vector<Block> blocks_;
    std::vector<uint8_t> bytes_;
};

/**
 * Read cursor over a block-max list with both *deep* positioning
 * (decode a block, walk its postings) and *shallow* positioning
 * (move the block pointer by metadata alone, never decoding). The
 * block-max evaluators interleave the two: shallow moves answer
 * "could anything here still matter?", deep moves score what does.
 *
 * The cursor position is (block, posting-in-block); blocks are decoded
 * lazily on the first deep access after a shallow move.
 */
class BlockMaxCursor
{
  public:
    /** @param io Shared per-query I/O counters (may be nullptr). */
    explicit BlockMaxCursor(const BlockMaxPostingList &list,
                            BlockIo *io = nullptr)
        : list_(&list), io_(io)
    {
    }

    /** True when the cursor has moved past the last posting. */
    bool
    exhausted() const
    {
        return blockIdx_ >= list_->numBlocks();
    }

    /** Current document id; decodes the current block if needed. */
    LocalDocId
    doc()
    {
        ensureDecoded();
        return buffer_[posInBlock_].doc;
    }

    /** Current posting; decodes the current block if needed. */
    const Posting &
    posting()
    {
        ensureDecoded();
        return buffer_[posInBlock_];
    }

    /** Move to the next posting (current block must be decoded). */
    void advance();

    /** Deep seek: first posting with doc >= target, counting skips. */
    void seek(LocalDocId target);

    /**
     * Shallow seek: move the block pointer to the first block whose
     * lastDoc >= target, without decoding anything. Skipped blocks are
     * charged to BlockIo exactly as in a deep seek.
     */
    void shallowSeek(LocalDocId target);

    /** Last document of the current block (metadata only). */
    LocalDocId
    blockLastDoc() const
    {
        return list_->block(blockIdx_).lastDoc;
    }

    /** Unweighted score bound of the current block (metadata only). */
    double
    blockMaxScore() const
    {
        return list_->block(blockIdx_).maxScore;
    }

  private:
    void ensureDecoded();

    /** Drop the rest of the current block, charging the skips. */
    void skipCurrentBlock();

    const BlockMaxPostingList *list_;
    BlockIo *io_;
    std::size_t blockIdx_ = 0;
    std::size_t posInBlock_ = 0;
    std::ptrdiff_t decodedBlock_ = -1;
    std::vector<Posting> buffer_;
};

} // namespace cottage

#endif // COTTAGE_INDEX_BLOCK_MAX_H
