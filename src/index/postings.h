/**
 * @file
 * Posting-list representation of one shard's inverted index.
 *
 * Postings carry shard-local document indices (dense, 0-based within
 * the shard) so evaluators can index the shard's length table directly;
 * the shard maps local indices back to global DocIds when emitting
 * results.
 */

#ifndef COTTAGE_INDEX_POSTINGS_H
#define COTTAGE_INDEX_POSTINGS_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "text/types.h"

namespace cottage {

/** Shard-local document index. */
using LocalDocId = uint32_t;

/** One document occurrence of a term. */
struct Posting
{
    LocalDocId doc;
    uint32_t freq;
};

/** All occurrences of one term inside one shard, ascending by doc. */
struct PostingList
{
    TermId term = invalidTerm;
    std::vector<Posting> postings;

    std::size_t size() const { return postings.size(); }
    bool empty() const { return postings.empty(); }
};

/**
 * Index of the first posting with doc >= target. Used by evaluators to
 * position a cursor at the start of a document slice; deliberately
 * charges no skip counters (the skipped prefix belongs to other
 * workers' slices — see DocRange in evaluator.h).
 */
inline std::size_t
slicePosition(const PostingList &list, LocalDocId target)
{
    if (target == 0)
        return 0;
    const auto it = std::lower_bound(
        list.postings.begin(), list.postings.end(), target,
        [](const Posting &p, LocalDocId d) { return p.doc < d; });
    return static_cast<std::size_t>(it - list.postings.begin());
}

} // namespace cottage

#endif // COTTAGE_INDEX_POSTINGS_H
