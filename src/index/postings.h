/**
 * @file
 * Posting-list representation of one shard's inverted index.
 *
 * Postings carry shard-local document indices (dense, 0-based within
 * the shard) so evaluators can index the shard's length table directly;
 * the shard maps local indices back to global DocIds when emitting
 * results.
 */

#ifndef COTTAGE_INDEX_POSTINGS_H
#define COTTAGE_INDEX_POSTINGS_H

#include <cstdint>
#include <vector>

#include "text/types.h"

namespace cottage {

/** Shard-local document index. */
using LocalDocId = uint32_t;

/** One document occurrence of a term. */
struct Posting
{
    LocalDocId doc;
    uint32_t freq;
};

/** All occurrences of one term inside one shard, ascending by doc. */
struct PostingList
{
    TermId term = invalidTerm;
    std::vector<Posting> postings;

    std::size_t size() const { return postings.size(); }
    bool empty() const { return postings.empty(); }
};

} // namespace cottage

#endif // COTTAGE_INDEX_POSTINGS_H
