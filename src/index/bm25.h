/**
 * @file
 * BM25 ranking function (Lucene-flavored, non-negative IDF).
 *
 * Every policy in this reproduction — exhaustive, Rank-S, Taily and
 * Cottage — ranks with the same BM25 so that quality differences come
 * from *which ISNs answer*, never from the scoring function.
 */

#ifndef COTTAGE_INDEX_BM25_H
#define COTTAGE_INDEX_BM25_H

#include <cmath>
#include <cstdint>

namespace cottage {

/** BM25 free parameters (Lucene/Solr defaults). */
struct Bm25Params
{
    double k1 = 1.2;
    double b = 0.75;
};

/**
 * Stateless BM25 scorer for one collection. Constructed per shard with
 * the *global* collection statistics so that scores are comparable
 * across shards and the aggregator's merge of per-shard top-K lists is
 * exact.
 */
class Bm25
{
  public:
    /**
     * @param numDocs Global document count N.
     * @param avgDocLength Global average document length.
     * @param params k1 / b.
     */
    Bm25(uint64_t numDocs, double avgDocLength, Bm25Params params = {})
        : numDocs_(numDocs), avgDocLength_(avgDocLength), params_(params)
    {
    }

    /**
     * Lucene-style IDF: log(1 + (N - df + 0.5) / (df + 0.5)).
     * Strictly positive for df <= N.
     */
    double
    idf(uint64_t docFreq) const
    {
        const double n = static_cast<double>(numDocs_);
        const double df = static_cast<double>(docFreq);
        return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    }

    /** Per-term, per-document contribution. */
    double
    score(double termIdf, uint32_t termFreq, uint32_t docLength) const
    {
        const double tf = static_cast<double>(termFreq);
        const double norm =
            params_.k1 *
            (1.0 - params_.b +
             params_.b * static_cast<double>(docLength) / avgDocLength_);
        return termIdf * tf * (params_.k1 + 1.0) / (tf + norm);
    }

    /**
     * Upper bound on a term's contribution regardless of document:
     * the tf -> infinity, shortest-document limit. This is the static
     * score bound of Macdonald et al. [37] used by the Estimated
     * MaxScore feature (Table II) and as a sanity cap in tests. Exact
     * per-shard bounds (max over actual postings) are tighter and are
     * what the pruning evaluators use.
     */
    double
    staticUpperBound(double termIdf) const
    {
        return termIdf * (params_.k1 + 1.0);
    }

    const Bm25Params &params() const { return params_; }
    double avgDocLength() const { return avgDocLength_; }
    uint64_t numDocs() const { return numDocs_; }

  private:
    uint64_t numDocs_;
    double avgDocLength_;
    Bm25Params params_;
};

} // namespace cottage

#endif // COTTAGE_INDEX_BM25_H
