#include "index/exhaustive_evaluator.h"

#include <limits>

namespace cottage {

SearchResult
ExhaustiveEvaluator::search(const InvertedIndex &index,
                            const std::vector<WeightedTerm> &terms,
                            std::size_t k, uint64_t maxScoredDocs,
                            DocRange range) const
{
    SearchResult result;
    TopKHeap heap(k);

    struct Cursor
    {
        const PostingList *list;
        double idf; // weight-scaled
        std::size_t pos;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(terms.size());
    for (const WeightedTerm &wt : terms) {
        const PostingList *list = index.postings(wt.term);
        if (list != nullptr && !list->empty())
            cursors.push_back({list, index.idf(wt.term) * wt.weight,
                               slicePosition(*list, range.begin)});
    }

    constexpr LocalDocId endDoc = std::numeric_limits<LocalDocId>::max();
    while (true) {
        // Next candidate: the smallest current doc across cursors.
        LocalDocId candidate = endDoc;
        for (const Cursor &cursor : cursors) {
            if (cursor.pos < cursor.list->size()) {
                candidate = std::min(candidate,
                                     cursor.list->postings[cursor.pos].doc);
            }
        }
        if (candidate == endDoc || candidate >= range.end)
            break;
        // Anytime cap: a scoreable candidate remains, so the heap is
        // the best-so-far of a strict prefix of the shard's candidates.
        if (result.work.docsScored >= maxScoredDocs) {
            result.work.truncated = true;
            break;
        }

        double score = 0.0;
        for (Cursor &cursor : cursors) {
            if (cursor.pos < cursor.list->size() &&
                cursor.list->postings[cursor.pos].doc == candidate) {
                score += index.scorePosting(
                    cursor.idf, cursor.list->postings[cursor.pos]);
                ++cursor.pos;
                ++result.work.postingsScored;
            }
        }
        ++result.work.docsScored;
        if (heap.push({index.globalDoc(candidate), score}))
            ++result.work.heapInsertions;
    }

    result.topK = heap.extractSorted();
    return result;
}

} // namespace cottage
