#include "index/evaluator.h"

namespace cottage {

std::vector<WeightedTerm>
toWeighted(const std::vector<TermId> &terms)
{
    std::vector<WeightedTerm> weighted;
    weighted.reserve(terms.size());
    for (TermId term : terms)
        weighted.push_back({term, 1.0});
    return weighted;
}

} // namespace cottage
