#include "index/bmm_evaluator.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>

#include "index/block_max.h"

namespace cottage {

namespace {

struct TermCursor
{
    BlockMaxCursor cursor;
    double idf;        // weight-scaled
    double maxScore;   // whole-list rank-safe bound (0 for demoting)
    double boundScale; // weight clamped at 0 for block-bound scaling
};

} // namespace

SearchResult
BmmEvaluator::search(const InvertedIndex &index,
                     const std::vector<WeightedTerm> &terms,
                     std::size_t k, uint64_t maxScoredDocs,
                     DocRange range) const
{
    SearchResult result;
    TopKHeap heap(k);
    BlockIo io;

    // Size pass: all cursors carve their decode buffers out of ONE
    // per-query slab, so it must be fully allocated before the first
    // cursor is built (the per-list allocations it replaces were a
    // measurable share of short-query latency).
    std::size_t slabSlots = 0;
    std::size_t live = 0;
    for (const WeightedTerm &wt : terms) {
        const BlockMaxPostingList *list = index.blockMax(wt.term);
        if (list != nullptr && !list->empty()) {
            slabSlots += BlockMaxCursor::scratchSlots(*list);
            ++live;
        }
    }
    if (live == 0 || k == 0) {
        result.topK = heap.extractSorted();
        return result;
    }
    // Typical queries fit the stack slab (see bmw_evaluator.cc).
    uint32_t stackSlab[kEvaluatorStackSlabSlots];
    std::unique_ptr<uint32_t[]> heapSlab;
    uint32_t *slab = stackSlab;
    if (slabSlots > kEvaluatorStackSlabSlots) {
        heapSlab = std::make_unique_for_overwrite<uint32_t[]>(slabSlots);
        slab = heapSlab.get();
    }

    // Cursors stay in original term order; the essential/non-essential
    // machinery works through a sorted index view instead. Candidates
    // that survive the bound checks have their contributions re-summed
    // in this original order, making the scores bit-identical to the
    // exhaustive evaluator's, not merely equal within a tolerance.
    std::vector<TermCursor> cursors;
    cursors.reserve(live);
    std::size_t slabOffset = 0;
    for (const WeightedTerm &wt : terms) {
        const BlockMaxPostingList *list = index.blockMax(wt.term);
        if (list == nullptr || list->empty())
            continue;
        const double bound =
            wt.weight >= 0.0 ? index.maxScore(wt.term) * wt.weight : 0.0;
        cursors.push_back(
            {BlockMaxCursor(*list, &io, slab + slabOffset),
             index.idf(wt.term) * wt.weight, bound,
             std::max(wt.weight, 0.0)});
        slabOffset += BlockMaxCursor::scratchSlots(*list);
    }
    if (range.begin > 0)
        for (TermCursor &tc : cursors)
            tc.cursor.positionAt(range.begin);

    // Ascending by score bound (original index breaks ties so the walk
    // order never depends on sort implementation details).
    std::vector<std::size_t> order(cursors.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (cursors[a].maxScore != cursors[b].maxScore)
                      return cursors[a].maxScore < cursors[b].maxScore;
                  return a < b;
              });
    std::vector<double> prefix(cursors.size() + 1, 0.0);
    for (std::size_t i = 0; i < order.size(); ++i)
        prefix[i + 1] = prefix[i] + cursors[order[i]].maxScore;

    // Non-essential prefix [0, essential): documents appearing only
    // there cannot beat the current threshold. Strict < keeps pruning
    // rank-safe under score ties.
    std::size_t essential = 0;
    const auto updateEssential = [&]() {
        if (!heap.full())
            return;
        while (essential < order.size() &&
               prefix[essential + 1] < heap.threshold()) {
            ++essential;
        }
    };

    std::vector<double> contrib(cursors.size(), 0.0);
    std::vector<std::size_t> touched;
    touched.reserve(cursors.size());

    constexpr LocalDocId endDoc = std::numeric_limits<LocalDocId>::max();
    while (essential < order.size()) {
        // Candidate: smallest current doc among essential cursors. A
        // cursor at or past the slice end contributes none — its
        // remaining postings belong to other workers (see DocRange).
        LocalDocId candidate = endDoc;
        for (std::size_t i = essential; i < order.size(); ++i) {
            TermCursor &tc = cursors[order[i]];
            if (!tc.cursor.exhausted() && tc.cursor.doc() < range.end)
                candidate = std::min(candidate, tc.cursor.doc());
        }
        if (candidate == endDoc)
            break;
        // Anytime cap: stop before evaluating a fresh candidate.
        if (result.work.docsScored >= maxScoredDocs) {
            result.work.truncated = true;
            break;
        }

        touched.clear();
        double walkScore = 0.0;
        for (std::size_t i = essential; i < order.size(); ++i) {
            TermCursor &tc = cursors[order[i]];
            if (!tc.cursor.exhausted() && tc.cursor.doc() == candidate) {
                const double value = index.scorePosting(
                    tc.idf, Posting{candidate, tc.cursor.freq()});
                tc.cursor.advance();
                contrib[order[i]] = value;
                touched.push_back(order[i]);
                walkScore += value;
                ++result.work.postingsScored;
            }
        }
        ++result.work.docsScored;

        // Walk the non-essential lists strongest-first. Two bail-outs,
        // both rank-safe: the MaxScore one on whole-list bounds, and
        // the block-max one — after a shallow (metadata-only) seek,
        // the current block's maximum bounds this list's contribution,
        // so a failing check proves the candidate out without decoding.
        bool complete = true;
        for (std::size_t i = essential; i-- > 0;) {
            if (heap.full() &&
                walkScore + prefix[i + 1] < heap.threshold()) {
                complete = false;
                break;
            }
            TermCursor &tc = cursors[order[i]];
            tc.cursor.shallowSeek(candidate);
            if (tc.cursor.exhausted())
                continue;
            if (heap.full() &&
                walkScore + tc.cursor.blockMaxScore() * tc.boundScale +
                        prefix[i] <
                    heap.threshold()) {
                complete = false;
                break;
            }
            tc.cursor.seek(candidate);
            if (!tc.cursor.exhausted() && tc.cursor.doc() == candidate) {
                const double value = index.scorePosting(
                    tc.idf, Posting{candidate, tc.cursor.freq()});
                tc.cursor.advance();
                contrib[order[i]] = value;
                touched.push_back(order[i]);
                walkScore += value;
                ++result.work.postingsScored;
            }
        }

        // A broken walk proved the candidate cannot enter the heap
        // (the flat MaxScore pushes its partial sum, which push()
        // rejects for the same reason); only complete candidates are
        // offered, scored in original term order.
        if (complete) {
            std::sort(touched.begin(), touched.end(),
                      std::less<std::size_t>());
            double score = 0.0;
            for (std::size_t idx : touched)
                score += contrib[idx];
            if (heap.push({index.globalDoc(candidate), score})) {
                ++result.work.heapInsertions;
                updateEssential();
            }
        }
    }

    result.work.docsSkipped = io.docsSkipped;
    result.work.blocksDecoded = io.blocksDecoded;
    result.work.blocksSkipped = io.blocksSkipped;
    result.topK = heap.extractSorted();
    return result;
}

} // namespace cottage
