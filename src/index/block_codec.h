/**
 * @file
 * StreamVByte group codec: the SIMD-decodable payload format behind
 * the block-max postings layer.
 *
 * Classic VByte spends a data-dependent branch per *byte*; on modern
 * cores that mispredict cost dominates inverted-index decode (Lin,
 * Paniak & Boerke, "The Performance Envelope of Inverted Indexing on
 * Modern Hardware"). StreamVByte splits the stream into a *control*
 * region (one byte per four values, two bits each encoding the value's
 * byte length minus one) and a *data* region (each value's significant
 * bytes, LSB first). Decode is then branch-free per group of four: the
 * control byte indexes a shuffle/length table, four values materialize
 * in one step, and the data pointer advances by a table lookup. Where
 * SSSE3 is available the group step is a single `pshufb`; the portable
 * scalar fallback (selected at compile time, see `COTTAGE_NO_SIMD` in
 * the top-level CMakeLists) assembles the same four values with
 * unrolled byte arithmetic and produces byte-identical output — CI
 * builds both flavors and diffs their run summaries.
 *
 * Intrinsics are confined to the codec translation unit
 * (`block_codec.cc`); nothing outside `src/index/` may touch them
 * (cottage_lint rule D6, DESIGN.md §5f/§5g).
 */

#ifndef COTTAGE_INDEX_BLOCK_CODEC_H
#define COTTAGE_INDEX_BLOCK_CODEC_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cottage {

/**
 * Bytes of zero padding every encoded stream carries after its logical
 * end. The decoder's group step always loads a full 16-byte window
 * (SIMD) or a full 4-byte window per value (scalar), so up to 15 bytes
 * past the last data byte must be readable. Appending the padding is
 * the buffer owner's job, exactly once per underlying buffer (see
 * BlockMaxPostingList's builder) — per-stream padding would bloat
 * every block.
 */
constexpr std::size_t kStreamVBytePadding = 16;

/** Control bytes needed for @p n values (four 2-bit codes per byte). */
constexpr std::size_t
streamVByteControlBytes(std::size_t n)
{
    return (n + 3) / 4;
}

/** Worst-case encoded bytes for @p n values (excluding padding). */
constexpr std::size_t
streamVByteMaxBytes(std::size_t n)
{
    return streamVByteControlBytes(n) + 4 * n;
}

/**
 * Output-buffer capacity the decoder needs for @p n values: the group
 * kernel always stores four lanes, so the tail group may write up to
 * three scratch values past @p n.
 */
constexpr std::size_t
streamVByteDecodeCapacity(std::size_t n)
{
    return (n + 3) & ~std::size_t{3};
}

/**
 * Append @p n values to @p out, StreamVByte-encoded: the control
 * region first, then the data region. Encoding is always scalar (it
 * runs once at index build), so the encoded bytes are identical in
 * SIMD and scalar builds by construction.
 */
void streamVByteEncode(const uint32_t *values, std::size_t n,
                       std::vector<uint8_t> &out);

/**
 * Decode exactly @p n values from the stream at @p in.
 *
 * @param in Start of the control region.
 * @param avail Bytes from @p in to the logical end of the stream(s);
 *        the underlying buffer must extend at least
 *        kStreamVBytePadding readable bytes past that.
 * @param n Number of values to decode.
 * @param out Destination with capacity streamVByteDecodeCapacity(n).
 * @return Bytes consumed (control + data), i.e. the offset of whatever
 *         follows this sequence in the enclosing stream.
 *
 * A control region that does not fit in @p avail, or one whose length
 * codes imply a data region overrunning @p avail, fails a
 * COTTAGE_CHECK ("truncated streamvbyte control stream" /
 * "truncated streamvbyte data stream") in every build type — the same
 * contract vbyteDecode() holds for its stream (varbyte.h).
 */
std::size_t streamVByteDecode(const uint8_t *in, std::size_t avail,
                              std::size_t n, uint32_t *out);

/**
 * Decode @p n delta-gap values and integrate them into absolute doc
 * ids in one pass: out[i] = prev + (gap[0] + 1) + ... + (gap[i] + 1),
 * all arithmetic mod 2^32. Same stream format, bounds contract and
 * return value as streamVByteDecode().
 *
 * The +1 folds the "gaps are distance minus one" convention into the
 * running sum, and a block whose first gap is an *absolute* id (block
 * 0 of a posting list) simply passes prev = 0xffffffff, which the
 * wrap-around cancels: 0xffffffff + gap + 1 == gap (mod 2^32). Fusing
 * the prefix sum into the group kernel saves a second pass over the
 * output array — in the SIMD build the integration is two in-register
 * shifted adds per group instead of four dependent scalar adds.
 */
std::size_t streamVByteDecodeDeltas(const uint8_t *in, std::size_t avail,
                                    std::size_t n, uint32_t prev,
                                    uint32_t *out);

/** True when this binary decodes with the SIMD (SSSE3) group kernel. */
bool streamVByteUsesSimd();

} // namespace cottage

#endif // COTTAGE_INDEX_BLOCK_CODEC_H
