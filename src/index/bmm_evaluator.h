/**
 * @file
 * Block-Max MaxScore (Chakrabarti et al. / Mallia et al. flavour).
 *
 * MaxScore's essential/non-essential split on whole-list bounds, with
 * the non-essential walk tightened by per-block maxima: before a
 * non-essential list is deep-seeked, its current block's bound decides
 * whether the candidate could still reach the heap at all. Rank-safe:
 * returns exactly the exhaustive top-K (ids and scores).
 */

#ifndef COTTAGE_INDEX_BMM_EVALUATOR_H
#define COTTAGE_INDEX_BMM_EVALUATOR_H

#include "index/evaluator.h"

namespace cottage {

/** Document-at-a-time Block-Max MaxScore over the block-max layer. */
class BmmEvaluator : public Evaluator
{
  public:
    const char *name() const override { return "bmm"; }

    using Evaluator::search;

    SearchResult search(const InvertedIndex &index,
                        const std::vector<WeightedTerm> &terms,
                        std::size_t k, uint64_t maxScoredDocs,
                        DocRange range) const override;
};

} // namespace cottage

#endif // COTTAGE_INDEX_BMM_EVALUATOR_H
