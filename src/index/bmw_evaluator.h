/**
 * @file
 * Block-Max WAND (Ding & Suel).
 *
 * WAND's pivot selection on whole-list bounds, refined by a shallow
 * per-block bound check before any deep scoring: a pivot whose
 * current-block maxima cannot reach the heap threshold is skipped past
 * the nearest block boundary without decoding a single posting.
 * Rank-safe: returns exactly the exhaustive top-K (ids and scores).
 */

#ifndef COTTAGE_INDEX_BMW_EVALUATOR_H
#define COTTAGE_INDEX_BMW_EVALUATOR_H

#include "index/evaluator.h"

namespace cottage {

/** Document-at-a-time Block-Max WAND over the block-max skip layer. */
class BmwEvaluator : public Evaluator
{
  public:
    const char *name() const override { return "bmw"; }

    using Evaluator::search;

    SearchResult search(const InvertedIndex &index,
                        const std::vector<WeightedTerm> &terms,
                        std::size_t k, uint64_t maxScoredDocs,
                        DocRange range) const override;
};

} // namespace cottage

#endif // COTTAGE_INDEX_BMW_EVALUATOR_H
