/**
 * @file
 * Global (cross-shard) collection statistics.
 *
 * Distributed engines share global document frequencies so BM25 scores
 * are comparable across ISNs; without this, merging per-shard top-K
 * lists would not reproduce the exhaustive global top-K that defines
 * the paper's quality ground truth.
 */

#ifndef COTTAGE_INDEX_COLLECTION_STATS_H
#define COTTAGE_INDEX_COLLECTION_STATS_H

#include <cstdint>
#include <vector>

#include "text/corpus.h"
#include "text/types.h"

namespace cottage {

/** Corpus-wide term and length statistics. */
class CollectionStats
{
  public:
    /** Scan a corpus once and record global df / N / average length. */
    explicit CollectionStats(const Corpus &corpus);

    /** Global number of documents. */
    uint64_t numDocs() const { return numDocs_; }

    /** Global average document length in tokens. */
    double avgDocLength() const { return avgDocLength_; }

    /** Global document frequency of a term (0 when never seen). */
    uint64_t docFreq(TermId term) const;

    /** Global collection frequency (total occurrences) of a term. */
    uint64_t collectionFreq(TermId term) const;

  private:
    uint64_t numDocs_ = 0;
    double avgDocLength_ = 0.0;
    std::vector<uint64_t> docFreq_;
    std::vector<uint64_t> collectionFreq_;
};

} // namespace cottage

#endif // COTTAGE_INDEX_COLLECTION_STATS_H
