#include "index/inverted_index.h"

#include <algorithm>
#include <functional>

#include "index/varbyte.h"
#include "util/logging.h"

namespace cottage {

InvertedIndex::InvertedIndex(const Corpus &corpus,
                             const std::vector<DocId> &docIds,
                             std::shared_ptr<const CollectionStats> stats,
                             Bm25Params params, uint32_t blockSize)
    : stats_(std::move(stats)),
      scorer_(stats_->numDocs(), stats_->avgDocLength(), params),
      blockSize_(blockSize)
{
    COTTAGE_CHECK_MSG(!docIds.empty(), "a shard needs documents");
    COTTAGE_CHECK_MSG(blockSize >= 1, "block size must be positive");
    lengths_.reserve(docIds.size());
    globalIds_.reserve(docIds.size());

    // First pass: count distinct terms to size the slot table.
    std::unordered_map<TermId, uint32_t> termCounts;
    for (DocId id : docIds)
        for (const TermFreq &tf : corpus.document(id).terms)
            ++termCounts[tf.term];

    lists_.resize(termCounts.size());
    maxScores_.assign(termCounts.size(), 0.0);
    termSlot_.reserve(termCounts.size() * 2);

    // Assign slots in ascending TermId order so the list layout never
    // depends on the standard library's hash ordering. The collection
    // loop itself may read the hash map in whatever order it likes:
    std::vector<TermId> terms;
    terms.reserve(termCounts.size());
    // cottage-lint: allow(D1): order-independent key harvest, sorted below
    for (const auto &entry : termCounts)
        terms.push_back(entry.first);
    std::sort(terms.begin(), terms.end(), std::less<TermId>());

    uint32_t nextSlot = 0;
    for (TermId term : terms) {
        termSlot_.emplace(term, nextSlot);
        lists_[nextSlot].term = term;
        lists_[nextSlot].postings.reserve(termCounts.at(term));
        ++nextSlot;
    }

    // Second pass: fill postings. Documents are visited in docIds
    // order, so postings stay ascending by local doc index.
    for (LocalDocId local = 0; local < docIds.size(); ++local) {
        const Document &doc = corpus.document(docIds[local]);
        lengths_.push_back(doc.length);
        globalIds_.push_back(doc.id);
        for (const TermFreq &tf : doc.terms) {
            PostingList &list = lists_[termSlot_.at(tf.term)];
            list.postings.push_back({local, tf.freq});
            ++totalPostings_;
        }
    }

    // One scoring pass per list builds the block-max skip layer; the
    // whole-list bound the flat pruning evaluators use is the max over
    // the block maxima, so both layers agree exactly.
    blockLists_.reserve(lists_.size());
    for (uint32_t slot = 0; slot < lists_.size(); ++slot) {
        const double termIdf = idf(lists_[slot].term);
        blockLists_.emplace_back(
            lists_[slot], blockSize_, [&](const Posting &posting) {
                return scorePosting(termIdf, posting);
            });
        maxScores_[slot] = blockLists_[slot].maxScore();
    }
}

const PostingList *
InvertedIndex::postings(TermId term) const
{
    const auto it = termSlot_.find(term);
    return it == termSlot_.end() ? nullptr : &lists_[it->second];
}

const BlockMaxPostingList *
InvertedIndex::blockMax(TermId term) const
{
    const auto it = termSlot_.find(term);
    return it == termSlot_.end() ? nullptr : &blockLists_[it->second];
}

double
InvertedIndex::idf(TermId term) const
{
    return scorer_.idf(stats_->docFreq(term));
}

InvertedIndex::Footprint
InvertedIndex::footprint() const
{
    Footprint fp;
    for (const PostingList &list : lists_) {
        fp.rawPostingBytes += list.size() * sizeof(Posting);
        fp.compressedPostingBytes += CompressedPostingList(list).bytes();
    }
    for (const BlockMaxPostingList &list : blockLists_) {
        fp.blockMetadataBytes += list.metadataBytes();
        fp.blockPayloadBytes += list.payloadBytes();
    }
    fp.blockMaxBytes = fp.blockMetadataBytes + fp.blockPayloadBytes;
    fp.docTableBytes = lengths_.size() * sizeof(uint32_t) +
                       globalIds_.size() * sizeof(DocId);
    return fp;
}

double
InvertedIndex::maxScore(TermId term) const
{
    const auto it = termSlot_.find(term);
    return it == termSlot_.end() ? 0.0 : maxScores_[it->second];
}

} // namespace cottage
