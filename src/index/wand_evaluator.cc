#include "index/wand_evaluator.h"

#include <algorithm>

namespace cottage {

namespace {

struct Cursor
{
    const PostingList *list;
    double idf;
    double maxScore;
    std::size_t pos;
    LocalDocId end; // slice end (exclusive); max = whole shard

    /** Past the last posting of the slice; postings beyond `end`
     *  belong to other workers and are never touched or charged. */
    bool
    exhausted() const
    {
        return pos >= list->size() || list->postings[pos].doc >= end;
    }

    LocalDocId
    doc() const
    {
        return list->postings[pos].doc;
    }
};

uint64_t
seek(Cursor &cursor, LocalDocId target)
{
    const auto &postings = cursor.list->postings;
    const auto begin =
        postings.begin() + static_cast<std::ptrdiff_t>(cursor.pos);
    const auto it = std::lower_bound(
        begin, postings.end(), target,
        [](const Posting &p, LocalDocId d) { return p.doc < d; });
    const auto skipped = static_cast<uint64_t>(it - begin);
    cursor.pos += skipped;
    return skipped;
}

} // namespace

SearchResult
WandEvaluator::search(const InvertedIndex &index,
                      const std::vector<WeightedTerm> &terms,
                      std::size_t k, uint64_t maxScoredDocs,
                      DocRange range) const
{
    SearchResult result;
    TopKHeap heap(k);

    std::vector<Cursor> cursors;
    cursors.reserve(terms.size());
    for (const WeightedTerm &wt : terms) {
        const PostingList *list = index.postings(wt.term);
        if (list != nullptr && !list->empty()) {
            // A demoting (negative-weight) list's rank-safe upper
            // bound is 0, not maxScore * weight (which would be its
            // lower bound); BM25 posting scores are non-negative.
            const double bound =
                wt.weight >= 0.0 ? index.maxScore(wt.term) * wt.weight
                                 : 0.0;
            cursors.push_back({list, index.idf(wt.term) * wt.weight,
                               bound, slicePosition(*list, range.begin),
                               range.end});
        }
    }
    if (cursors.empty() || k == 0) {
        result.topK = heap.extractSorted();
        return result;
    }

    // Live cursor pointers, kept sorted by current doc each round.
    std::vector<Cursor *> order;
    order.reserve(cursors.size());
    for (Cursor &cursor : cursors)
        order.push_back(&cursor);

    while (true) {
        order.erase(std::remove_if(order.begin(), order.end(),
                                   [](Cursor *c) { return c->exhausted(); }),
                    order.end());
        if (order.empty())
            break;
        // Ties (several cursors parked on the same doc) break by
        // construction order — &cursors[i] ascends with i — so the
        // sequence, and with it the pivot doc's floating-point
        // summation order, is a pure function of the cursor state:
        // cursors on the pivot sit contiguously in original term
        // order, never in a sort-implementation-dependent shuffle.
        // That keeps scores bit-identical across DocRange slices.
        std::sort(order.begin(), order.end(), [](Cursor *a, Cursor *b) {
            if (a->doc() != b->doc())
                return a->doc() < b->doc();
            return a < b;
        });

        // Pivot: first cursor where the cumulative bound could reach
        // the heap. >= keeps ties evaluable (rank-safe with DocId
        // tie-breaking). threshold() is -inf while the heap is filling,
        // so every candidate pivots — even all-negative scores (a -1.0
        // sentinel here used to prune legitimate demoted results).
        const double threshold = heap.threshold();
        double accumulated = 0.0;
        std::size_t pivot = order.size();
        for (std::size_t i = 0; i < order.size(); ++i) {
            accumulated += order[i]->maxScore;
            if (accumulated >= threshold) {
                pivot = i;
                break;
            }
        }
        if (pivot == order.size())
            break; // nothing remaining can enter the top-K

        const LocalDocId pivotDoc = order[pivot]->doc();
        if (order[0]->doc() == pivotDoc) {
            // Anytime cap: the next step would score a fresh candidate.
            if (result.work.docsScored >= maxScoredDocs) {
                result.work.truncated = true;
                break;
            }
            // All cursors up to the pivot sit on pivotDoc: score it.
            double score = 0.0;
            for (Cursor *cursor : order) {
                if (cursor->exhausted() || cursor->doc() != pivotDoc)
                    continue;
                score += index.scorePosting(
                    cursor->idf, cursor->list->postings[cursor->pos]);
                ++cursor->pos;
                ++result.work.postingsScored;
            }
            ++result.work.docsScored;
            if (heap.push({index.globalDoc(pivotDoc), score}))
                ++result.work.heapInsertions;
        } else {
            // Advance the strongest cursor before the pivot; fewer
            // future seeks than advancing the weakest.
            Cursor *advance = order[0];
            for (std::size_t i = 1; i < pivot; ++i) {
                if (order[i]->doc() < pivotDoc &&
                    order[i]->maxScore > advance->maxScore) {
                    advance = order[i];
                }
            }
            const uint64_t skipped = seek(*advance, pivotDoc);
            result.work.postingsSkipped += skipped;
            // Uniform schema with the block-max evaluators: skipped
            // candidates are reported per-doc too (one posting per doc
            // in a flat list).
            result.work.docsSkipped += skipped;
        }
    }

    result.topK = heap.extractSorted();
    return result;
}

} // namespace cottage
