#include "index/collection_stats.h"

namespace cottage {

CollectionStats::CollectionStats(const Corpus &corpus)
    : numDocs_(corpus.numDocs()),
      avgDocLength_(corpus.averageDocLength()),
      docFreq_(corpus.vocabulary().size(), 0),
      collectionFreq_(corpus.vocabulary().size(), 0)
{
    for (const Document &doc : corpus.documents()) {
        for (const TermFreq &tf : doc.terms) {
            ++docFreq_[tf.term];
            collectionFreq_[tf.term] += tf.freq;
        }
    }
}

uint64_t
CollectionStats::docFreq(TermId term) const
{
    return term < docFreq_.size() ? docFreq_[term] : 0;
}

uint64_t
CollectionStats::collectionFreq(TermId term) const
{
    return term < collectionFreq_.size() ? collectionFreq_[term] : 0;
}

} // namespace cottage
