#include "index/block_max.h"

#include <algorithm>
#include <limits>

#include "index/block_codec.h"
#include "util/logging.h"

namespace cottage {

BlockMaxPostingList::BlockMaxPostingList(
    const PostingList &list, uint32_t blockSize,
    const std::function<double(const Posting &)> &score)
    : term_(list.term), count_(list.size()), blockSize_(blockSize)
{
    COTTAGE_CHECK_MSG(blockSize >= 1, "block size must be positive");
    blocks_.reserve((count_ + blockSize - 1) / blockSize);
    bytes_.reserve(count_ * 2 + kStreamVBytePadding);

    // Per-block scratch: deltas and freqs are staged flat, then each
    // becomes one StreamVByte sequence in the shared payload stream.
    std::vector<uint32_t> deltas;
    std::vector<uint32_t> freqs;
    deltas.reserve(std::min<std::size_t>(blockSize, count_));
    freqs.reserve(std::min<std::size_t>(blockSize, count_));

    LocalDocId last = 0;
    for (std::size_t begin = 0; begin < count_; begin += blockSize) {
        const std::size_t end = std::min<std::size_t>(begin + blockSize,
                                                      count_);
        Block block;
        COTTAGE_CHECK_MSG(bytes_.size() <=
                              std::numeric_limits<uint32_t>::max(),
                          "block payload stream exceeds 4 GiB");
        block.offset = static_cast<uint32_t>(bytes_.size());
        block.count = static_cast<uint32_t>(end - begin);
        deltas.clear();
        freqs.clear();
        for (std::size_t i = begin; i < end; ++i) {
            const Posting &posting = list.postings[i];
            // The gap chain restarts at each block: the block's first
            // gap is relative to the *previous block's* lastDoc (or
            // absolute for block 0), so a block decodes standalone.
            const uint32_t gap =
                (begin == 0 && i == begin) ? posting.doc
                                           : posting.doc - last - 1;
            COTTAGE_CHECK_MSG((begin == 0 && i == begin) ||
                                  posting.doc > last,
                              "postings must ascend by doc");
            deltas.push_back(gap);
            freqs.push_back(posting.freq);
            last = posting.doc;
            block.maxScore = std::max(block.maxScore, score(posting));
        }
        streamVByteEncode(deltas.data(), deltas.size(), bytes_);
        streamVByteEncode(freqs.data(), freqs.size(), bytes_);
        block.lastDoc = last;
        listMaxScore_ = std::max(listMaxScore_, block.maxScore);
        blocks_.push_back(block);
    }
    // One tail pad serves every block: the decoder may read up to
    // kStreamVBytePadding bytes past a sequence's logical end.
    bytes_.insert(bytes_.end(), kStreamVBytePadding, uint8_t{0});
    bytes_.shrink_to_fit();
}

std::size_t
BlockMaxPostingList::decodeBlockDocs(std::size_t b, uint32_t *docs) const
{
    COTTAGE_CHECK_MSG(b < blocks_.size(), "block index out of range");
    const Block &block = blocks_[b];
    COTTAGE_CHECK_MSG(bytes_.size() >=
                          block.offset + kStreamVBytePadding,
                      "truncated streamvbyte control stream");
    const std::size_t avail =
        bytes_.size() - kStreamVBytePadding - block.offset;
    // Block 0's first gap is the absolute doc id; the 0xffffffff seed
    // makes the codec's uniform "+ gap + 1" chain yield exactly that
    // (see streamVByteDecodeDeltas). Every other block chains from the
    // previous block's lastDoc.
    const uint32_t prev =
        b == 0 ? 0xffffffffu : blocks_[b - 1].lastDoc;
    const std::size_t consumed =
        streamVByteDecodeDeltas(bytes_.data() + block.offset, avail,
                                block.count, prev, docs);
    return block.offset + consumed;
}

void
BlockMaxPostingList::decodeBlockFreqs(std::size_t b,
                                      std::size_t freqOffset,
                                      uint32_t *freqs) const
{
    const Block &block = blocks_[b];
    COTTAGE_CHECK_MSG(bytes_.size() >= freqOffset + kStreamVBytePadding,
                      "truncated streamvbyte control stream");
    const std::size_t avail =
        bytes_.size() - kStreamVBytePadding - freqOffset;
    (void)streamVByteDecode(bytes_.data() + freqOffset, avail,
                            block.count, freqs);
}

void
BlockMaxPostingList::decodeBlock(std::size_t b,
                                 std::vector<Posting> &out) const
{
    COTTAGE_CHECK_MSG(b < blocks_.size(), "block index out of range");
    const Block &block = blocks_[b];
    std::vector<uint32_t> docs(streamVByteDecodeCapacity(block.count));
    std::vector<uint32_t> freqs(streamVByteDecodeCapacity(block.count));
    const std::size_t freqOffset = decodeBlockDocs(b, docs.data());
    decodeBlockFreqs(b, freqOffset, freqs.data());
    out.clear();
    out.reserve(block.count);
    for (uint32_t i = 0; i < block.count; ++i)
        out.push_back({docs[i], freqs[i]});
}

BlockMaxCursor::BlockMaxCursor(const BlockMaxPostingList &list,
                               BlockIo *io)
    : list_(&list), io_(io), numBlocks_(list.numBlocks())
{
    const std::size_t cap = streamVByteDecodeCapacity(list.blockSize());
    buffer_ = std::make_unique_for_overwrite<uint32_t[]>(2 * cap);
    docs_ = buffer_.get();
    freqs_ = buffer_.get() + cap;
    refreshBlockMeta();
}

BlockMaxCursor::BlockMaxCursor(const BlockMaxPostingList &list,
                               BlockIo *io, uint32_t *scratch)
    : list_(&list), io_(io), numBlocks_(list.numBlocks())
{
    const std::size_t cap = streamVByteDecodeCapacity(list.blockSize());
    docs_ = scratch;
    freqs_ = scratch + cap;
    refreshBlockMeta();
}

std::size_t
BlockMaxCursor::scratchSlots(const BlockMaxPostingList &list)
{
    return 2 * streamVByteDecodeCapacity(list.blockSize());
}

void
BlockMaxCursor::decodeCurrentBlock()
{
    COTTAGE_CHECK_MSG(!exhausted(), "cursor exhausted");
    count_ = list_->block(blockIdx_).count;
    freqOffset_ = list_->decodeBlockDocs(blockIdx_, docs_);
    freqsDecoded_ = false;
    decodedBlock_ = static_cast<std::ptrdiff_t>(blockIdx_);
    if (io_ != nullptr)
        ++io_->blocksDecoded;
}

void
BlockMaxCursor::decodeFreqs()
{
    list_->decodeBlockFreqs(blockIdx_, freqOffset_, freqs_);
    freqsDecoded_ = true;
}

} // namespace cottage
