#include "index/block_max.h"

#include <algorithm>

#include "index/varbyte.h"
#include "util/logging.h"

namespace cottage {

BlockMaxPostingList::BlockMaxPostingList(
    const PostingList &list, uint32_t blockSize,
    const std::function<double(const Posting &)> &score)
    : term_(list.term), count_(list.size()), blockSize_(blockSize)
{
    COTTAGE_CHECK_MSG(blockSize >= 1, "block size must be positive");
    blocks_.reserve((count_ + blockSize - 1) / blockSize);
    bytes_.reserve(count_ * 2);

    LocalDocId last = 0;
    for (std::size_t begin = 0; begin < count_; begin += blockSize) {
        const std::size_t end = std::min<std::size_t>(begin + blockSize,
                                                      count_);
        Block block;
        block.offset = static_cast<uint32_t>(bytes_.size());
        block.count = static_cast<uint32_t>(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            const Posting &posting = list.postings[i];
            // The gap chain restarts at each block: the block's first
            // gap is relative to the *previous block's* lastDoc (or
            // absolute for block 0), so a block decodes standalone.
            const uint32_t gap =
                (begin == 0 && i == begin) ? posting.doc
                                           : posting.doc - last - 1;
            COTTAGE_CHECK_MSG((begin == 0 && i == begin) ||
                                  posting.doc > last,
                              "postings must ascend by doc");
            vbyteEncode(gap, bytes_);
            vbyteEncode(posting.freq, bytes_);
            last = posting.doc;
            block.maxScore = std::max(block.maxScore, score(posting));
        }
        block.lastDoc = last;
        listMaxScore_ = std::max(listMaxScore_, block.maxScore);
        blocks_.push_back(block);
    }
    bytes_.shrink_to_fit();
}

void
BlockMaxPostingList::decodeBlock(std::size_t b,
                                 std::vector<Posting> &out) const
{
    COTTAGE_CHECK_MSG(b < blocks_.size(), "block index out of range");
    const Block &block = blocks_[b];
    out.clear();
    out.reserve(block.count);
    std::size_t offset = block.offset;
    LocalDocId last = b == 0 ? 0 : blocks_[b - 1].lastDoc;
    for (uint32_t i = 0; i < block.count; ++i) {
        const uint32_t gap = vbyteDecode(bytes_, offset);
        const uint32_t freq = vbyteDecode(bytes_, offset);
        const LocalDocId doc =
            (b == 0 && i == 0) ? gap : last + gap + 1;
        out.push_back({doc, freq});
        last = doc;
    }
}

void
BlockMaxCursor::ensureDecoded()
{
    COTTAGE_CHECK_MSG(!exhausted(), "cursor exhausted");
    if (decodedBlock_ == static_cast<std::ptrdiff_t>(blockIdx_))
        return;
    list_->decodeBlock(blockIdx_, buffer_);
    decodedBlock_ = static_cast<std::ptrdiff_t>(blockIdx_);
    if (io_ != nullptr)
        ++io_->blocksDecoded;
}

void
BlockMaxCursor::skipCurrentBlock()
{
    if (io_ != nullptr) {
        io_->docsSkipped += list_->block(blockIdx_).count - posInBlock_;
        if (decodedBlock_ != static_cast<std::ptrdiff_t>(blockIdx_))
            ++io_->blocksSkipped;
    }
    ++blockIdx_;
    posInBlock_ = 0;
}

void
BlockMaxCursor::advance()
{
    COTTAGE_CHECK_MSG(decodedBlock_ ==
                          static_cast<std::ptrdiff_t>(blockIdx_),
                      "advance on an undecoded block");
    ++posInBlock_;
    if (posInBlock_ >= buffer_.size()) {
        ++blockIdx_;
        posInBlock_ = 0;
    }
}

void
BlockMaxCursor::seek(LocalDocId target)
{
    while (!exhausted() && blockLastDoc() < target)
        skipCurrentBlock();
    if (exhausted())
        return;
    ensureDecoded();
    // target <= lastDoc, so the scan always stops inside the block.
    while (buffer_[posInBlock_].doc < target) {
        ++posInBlock_;
        if (io_ != nullptr)
            ++io_->docsSkipped;
    }
}

void
BlockMaxCursor::shallowSeek(LocalDocId target)
{
    while (!exhausted() && blockLastDoc() < target)
        skipCurrentBlock();
}

} // namespace cottage
