/**
 * @file
 * Bounded top-K accumulator with deterministic tie-breaking.
 *
 * Ordering: higher score wins; equal scores break toward the smaller
 * global DocId. Determinism matters because the paper's quality metric
 * compares result *sets* against the exhaustive ground truth — ties
 * must resolve identically everywhere.
 */

#ifndef COTTAGE_INDEX_TOP_K_H
#define COTTAGE_INDEX_TOP_K_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "text/types.h"

namespace cottage {

/** One ranked search hit (global document id). */
struct ScoredDoc
{
    DocId doc = invalidDoc;
    double score = 0.0;
};

/** True if a ranks strictly better than b. */
inline bool
ranksBetter(const ScoredDoc &a, const ScoredDoc &b)
{
    if (a.score != b.score)
        return a.score > b.score;
    return a.doc < b.doc;
}

/**
 * Fixed-capacity top-K heap. push() is O(log K); extractSorted()
 * returns the best-first ranking.
 */
class TopKHeap
{
  public:
    explicit TopKHeap(std::size_t k) : k_(k) {}

    /** Capacity K. */
    std::size_t capacity() const { return k_; }

    /** Current number of held results. */
    std::size_t size() const { return heap_.size(); }

    bool full() const { return heap_.size() >= k_; }

    /**
     * Weakest currently-held entry; only meaningful when full(). The
     * pruning evaluators use its score as the entry threshold.
     */
    const ScoredDoc &
    worst() const
    {
        return heap_.front();
    }

    /**
     * Score a new result must strictly beat to enter a full heap;
     * -infinity while the heap is still filling (everything enters).
     * A finite sentinel here would be wrong: weighted (demoting)
     * queries legitimately produce scores in (-inf, 0].
     */
    double
    threshold() const
    {
        return full() ? heap_.front().score
                      : -std::numeric_limits<double>::infinity();
    }

    /**
     * Offer a result. Returns true if it entered the heap (an
     * "insertion", counted as predictive work by the latency model).
     */
    bool
    push(const ScoredDoc &entry)
    {
        if (k_ == 0)
            return false;
        if (heap_.size() < k_) {
            heap_.push_back(entry);
            std::push_heap(heap_.begin(), heap_.end(), cmpWorstFirst);
            return true;
        }
        if (!ranksBetter(entry, heap_.front()))
            return false;
        std::pop_heap(heap_.begin(), heap_.end(), cmpWorstFirst);
        heap_.back() = entry;
        std::push_heap(heap_.begin(), heap_.end(), cmpWorstFirst);
        return true;
    }

    /** Best-first ranking; leaves the heap empty. */
    std::vector<ScoredDoc>
    extractSorted()
    {
        std::vector<ScoredDoc> out = std::move(heap_);
        heap_.clear();
        std::sort(out.begin(), out.end(), ranksBetter);
        return out;
    }

  private:
    /** Min-heap on rank: the *worst* element sits at front. */
    static bool
    cmpWorstFirst(const ScoredDoc &a, const ScoredDoc &b)
    {
        return ranksBetter(a, b);
    }

    std::size_t k_;
    std::vector<ScoredDoc> heap_;
};

} // namespace cottage

#endif // COTTAGE_INDEX_TOP_K_H
