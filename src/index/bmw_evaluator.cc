#include "index/bmw_evaluator.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "index/block_max.h"

namespace cottage {

namespace {

struct TermCursor
{
    BlockMaxCursor cursor;
    double idf;      // weight-scaled
    double maxScore; // whole-list rank-safe bound (0 for demoting)
    double boundScale; // weight clamped at 0 for block-bound scaling
};

/**
 * Sort key for the per-round cursor ordering: current doc, with
 * exhausted cursors at +infinity so one insertion pass both orders the
 * live cursors and floats the dead ones to the tail (where the round
 * loop retires them). Doc ids are 32-bit, so the 64-bit sentinel can
 * never collide with a real document. A cursor standing at or past the
 * slice end keys to +infinity too: its remaining postings belong to
 * other workers' slices (the boundary-block peek that learns this may
 * decode one block — deterministic, charged, see DocRange).
 */
inline uint64_t
cursorKey(TermCursor *tc, LocalDocId end)
{
    if (tc->cursor.exhausted())
        return std::numeric_limits<uint64_t>::max();
    const auto doc = static_cast<uint64_t>(tc->cursor.doc());
    return doc >= end ? std::numeric_limits<uint64_t>::max() : doc;
}

} // namespace

SearchResult
BmwEvaluator::search(const InvertedIndex &index,
                     const std::vector<WeightedTerm> &terms,
                     std::size_t k, uint64_t maxScoredDocs,
                     DocRange range) const
{
    SearchResult result;
    TopKHeap heap(k);
    BlockIo io;

    // Size pass: all cursors carve their decode buffers out of ONE
    // per-query slab, so it must be fully allocated before the first
    // cursor is built. The second blockMax() hash probe per term is
    // far cheaper than the vector-of-picked-terms allocation it
    // replaces on short queries.
    std::size_t slabSlots = 0;
    std::size_t live = 0;
    for (const WeightedTerm &wt : terms) {
        const BlockMaxPostingList *list = index.blockMax(wt.term);
        if (list != nullptr && !list->empty()) {
            slabSlots += BlockMaxCursor::scratchSlots(*list);
            ++live;
        }
    }
    if (live == 0 || k == 0) {
        result.topK = heap.extractSorted();
        return result;
    }
    // Typical queries (a handful of terms at block size <= 256) fit in
    // a stack slab; the heap allocation was a measurable share of
    // single-term latency, where wand pays no such setup cost.
    uint32_t stackSlab[kEvaluatorStackSlabSlots];
    std::unique_ptr<uint32_t[]> heapSlab;
    uint32_t *slab = stackSlab;
    if (slabSlots > kEvaluatorStackSlabSlots) {
        heapSlab = std::make_unique_for_overwrite<uint32_t[]>(slabSlots);
        slab = heapSlab.get();
    }

    // Original term order is load-bearing: deep scoring iterates this
    // vector so every candidate's contributions sum in exactly the
    // exhaustive evaluator's order — bit-identical scores, not merely
    // equal ranks.
    std::vector<TermCursor> cursors;
    cursors.reserve(live);
    std::size_t slabOffset = 0;
    for (const WeightedTerm &wt : terms) {
        const BlockMaxPostingList *list = index.blockMax(wt.term);
        if (list == nullptr || list->empty())
            continue;
        // As in WAND: a demoting (negative-weight) list's rank-safe
        // upper bound is 0; its block bounds clamp the same way.
        const double bound =
            wt.weight >= 0.0 ? index.maxScore(wt.term) * wt.weight : 0.0;
        cursors.push_back(
            {BlockMaxCursor(*list, &io, slab + slabOffset),
             index.idf(wt.term) * wt.weight, bound,
             std::max(wt.weight, 0.0)});
        slabOffset += BlockMaxCursor::scratchSlots(*list);
    }
    if (range.begin > 0)
        for (TermCursor &tc : cursors)
            tc.cursor.positionAt(range.begin);

    constexpr LocalDocId endDoc = std::numeric_limits<LocalDocId>::max();
    const LocalDocId end = range.end;

    if (cursors.size() == 1) {
        // Single-term fast path: the pivot is always the one cursor, so
        // the per-round ordering and bound-accumulation machinery is
        // pure overhead. Same decisions as the generic loop (identical
        // threshold and block-bound tests, so identical docsScored and
        // an identical heap), but a rejected block is passed over by
        // metadata alone — no decode just to learn a doc id the next
        // round's (nonexistent) sort would have wanted.
        TermCursor &tc = cursors.front();
        // The threshold moves only when a push succeeds, so it is
        // cached across postings instead of re-read from the heap.
        double threshold = heap.threshold();
        while (!tc.cursor.exhausted()) {
            // Slice end: once the current block reaches `end`, one
            // boundary peek (possibly a decode) decides whether any
            // in-range posting remains. Full-range runs never take it.
            if (end != endDoc && tc.cursor.blockLastDoc() >= end &&
                tc.cursor.doc() >= end) {
                break;
            }
            if (tc.maxScore < threshold)
                break; // nothing remaining can enter the top-K
            if (tc.cursor.blockMaxScore() * tc.boundScale >= threshold) {
                if (result.work.docsScored >= maxScoredDocs) {
                    result.work.truncated = true;
                    break;
                }
                const LocalDocId doc = tc.cursor.doc();
                const double score = index.scorePosting(
                    tc.idf, Posting{doc, tc.cursor.freq()});
                tc.cursor.advance();
                ++result.work.postingsScored;
                ++result.work.docsScored;
                if (heap.push({index.globalDoc(doc), score})) {
                    ++result.work.heapInsertions;
                    threshold = heap.threshold();
                }
            } else {
                const uint64_t next =
                    static_cast<uint64_t>(tc.cursor.blockLastDoc()) + 1;
                tc.cursor.shallowSeek(static_cast<LocalDocId>(
                    std::min<uint64_t>(next, endDoc)));
            }
        }
        result.work.docsSkipped = io.docsSkipped;
        result.work.blocksDecoded = io.blocksDecoded;
        result.work.blocksSkipped = io.blocksSkipped;
        result.topK = heap.extractSorted();
        return result;
    }

    std::vector<TermCursor *> order;
    order.reserve(cursors.size());
    for (TermCursor &cursor : cursors)
        order.push_back(&cursor);
    while (true) {
        // Re-order by current doc with a stable insertion pass: the
        // array holds one pointer per query term, and most rounds move
        // only the cursors the previous round touched, so this beats a
        // remove_if sweep plus a std::sort call per round. Exhausted
        // cursors key to +inf and retire from the tail.
        for (std::size_t i = 1; i < order.size(); ++i) {
            TermCursor *moved = order[i];
            const uint64_t key = cursorKey(moved, end);
            std::size_t j = i;
            while (j > 0 && cursorKey(order[j - 1], end) > key) {
                order[j] = order[j - 1];
                --j;
            }
            order[j] = moved;
        }
        while (!order.empty() &&
               cursorKey(order.back(), end) ==
                   std::numeric_limits<uint64_t>::max()) {
            order.pop_back();
        }
        if (order.empty())
            break;

        // Pivot on whole-list bounds, exactly like WAND (>= keeps score
        // ties evaluable; threshold() is -inf while the heap fills).
        const double threshold = heap.threshold();
        double accumulated = 0.0;
        std::size_t pivot = order.size();
        for (std::size_t i = 0; i < order.size(); ++i) {
            accumulated += order[i]->maxScore;
            if (accumulated >= threshold) {
                pivot = i;
                break;
            }
        }
        if (pivot == order.size())
            break; // nothing remaining can enter the top-K

        // Cursors past the pivot sitting on the same doc contribute to
        // it too; fold them in so the shallow bound and the block-skip
        // target below account for every list containing pivotDoc.
        const LocalDocId pivotDoc = order[pivot]->cursor.doc();
        while (pivot + 1 < order.size() &&
               order[pivot + 1]->cursor.doc() == pivotDoc) {
            ++pivot;
        }

        if (order[0]->cursor.doc() == pivotDoc) {
            // All cursors up to the pivot sit on pivotDoc, so each
            // one's *current block* contains it: the sum of the block
            // maxima is a bound on pivotDoc's score that needs no
            // shallow seeks.
            double blockBound = 0.0;
            for (std::size_t i = 0; i <= pivot; ++i) {
                blockBound += order[i]->cursor.blockMaxScore() *
                              order[i]->boundScale;
            }
            if (blockBound >= threshold) {
                // Anytime cap: the next step scores a fresh candidate.
                // Checked only after the shallow test passes, so a
                // capped run stops at exactly the same docsScored
                // count an uncapped run would have accumulated.
                if (result.work.docsScored >= maxScoredDocs) {
                    result.work.truncated = true;
                    break;
                }
                double score = 0.0;
                for (TermCursor &tc : cursors) {
                    if (!tc.cursor.exhausted() &&
                        tc.cursor.doc() == pivotDoc) {
                        score += index.scorePosting(
                            tc.idf, Posting{pivotDoc, tc.cursor.freq()});
                        tc.cursor.advance();
                        ++result.work.postingsScored;
                    }
                }
                ++result.work.docsScored;
                if (heap.push({index.globalDoc(pivotDoc), score}))
                    ++result.work.heapInsertions;
            } else {
                // Shallow rejection: no doc covered only by the
                // current blocks of [0..pivot] can reach the heap.
                // Jump past the nearest block boundary (or to the next
                // cursor's doc, whichever is closer) — threshold is
                // finite here, so the heap is full and the skipped
                // range is provably out.
                uint64_t next = endDoc;
                for (std::size_t i = 0; i <= pivot; ++i) {
                    next = std::min<uint64_t>(
                        next,
                        static_cast<uint64_t>(
                            order[i]->cursor.blockLastDoc()) +
                            1);
                }
                if (pivot + 1 < order.size()) {
                    next = std::min<uint64_t>(
                        next, order[pivot + 1]->cursor.doc());
                }
                // Clamped at the slice end: postings beyond it belong
                // to other workers and are neither skipped nor charged.
                const auto target = static_cast<LocalDocId>(
                    std::min<uint64_t>(next, end));
                for (std::size_t i = 0; i <= pivot; ++i)
                    order[i]->cursor.seek(target);
            }
        } else {
            // Not aligned yet: advance the strongest cursor before the
            // pivot (same heuristic as WAND).
            TermCursor *advance = order[0];
            for (std::size_t i = 1; i < pivot; ++i) {
                if (order[i]->cursor.doc() < pivotDoc &&
                    order[i]->maxScore > advance->maxScore) {
                    advance = order[i];
                }
            }
            advance->cursor.seek(pivotDoc);
        }
    }

    result.work.docsSkipped = io.docsSkipped;
    result.work.blocksDecoded = io.blocksDecoded;
    result.work.blocksSkipped = io.blocksSkipped;
    result.topK = heap.extractSorted();
    return result;
}

} // namespace cottage
