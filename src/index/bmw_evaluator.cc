#include "index/bmw_evaluator.h"

#include <algorithm>
#include <limits>

#include "index/block_max.h"

namespace cottage {

namespace {

struct TermCursor
{
    BlockMaxCursor cursor;
    double idf;      // weight-scaled
    double maxScore; // whole-list rank-safe bound (0 for demoting)
    double boundScale; // weight clamped at 0 for block-bound scaling
};

} // namespace

SearchResult
BmwEvaluator::search(const InvertedIndex &index,
                     const std::vector<WeightedTerm> &terms,
                     std::size_t k,
                     uint64_t maxScoredDocs) const
{
    SearchResult result;
    TopKHeap heap(k);
    BlockIo io;

    // Original term order is load-bearing: deep scoring iterates this
    // vector so every candidate's contributions sum in exactly the
    // exhaustive evaluator's order — bit-identical scores, not merely
    // equal ranks.
    std::vector<TermCursor> cursors;
    cursors.reserve(terms.size());
    for (const WeightedTerm &wt : terms) {
        const BlockMaxPostingList *list = index.blockMax(wt.term);
        if (list != nullptr && !list->empty()) {
            // As in WAND: a demoting (negative-weight) list's rank-safe
            // upper bound is 0; its block bounds clamp the same way.
            const double bound =
                wt.weight >= 0.0 ? index.maxScore(wt.term) * wt.weight
                                 : 0.0;
            cursors.push_back({BlockMaxCursor(*list, &io),
                               index.idf(wt.term) * wt.weight, bound,
                               std::max(wt.weight, 0.0)});
        }
    }
    if (cursors.empty() || k == 0) {
        result.topK = heap.extractSorted();
        return result;
    }

    std::vector<TermCursor *> order;
    order.reserve(cursors.size());
    for (TermCursor &cursor : cursors)
        order.push_back(&cursor);

    constexpr LocalDocId endDoc = std::numeric_limits<LocalDocId>::max();
    while (true) {
        order.erase(std::remove_if(order.begin(), order.end(),
                                   [](TermCursor *c) {
                                       return c->cursor.exhausted();
                                   }),
                    order.end());
        if (order.empty())
            break;
        std::sort(order.begin(), order.end(),
                  [](TermCursor *a, TermCursor *b) {
                      return a->cursor.doc() < b->cursor.doc();
                  });

        // Pivot on whole-list bounds, exactly like WAND (>= keeps score
        // ties evaluable; threshold() is -inf while the heap fills).
        const double threshold = heap.threshold();
        double accumulated = 0.0;
        std::size_t pivot = order.size();
        for (std::size_t i = 0; i < order.size(); ++i) {
            accumulated += order[i]->maxScore;
            if (accumulated >= threshold) {
                pivot = i;
                break;
            }
        }
        if (pivot == order.size())
            break; // nothing remaining can enter the top-K

        // Cursors past the pivot sitting on the same doc contribute to
        // it too; fold them in so the shallow bound and the block-skip
        // target below account for every list containing pivotDoc.
        const LocalDocId pivotDoc = order[pivot]->cursor.doc();
        while (pivot + 1 < order.size() &&
               order[pivot + 1]->cursor.doc() == pivotDoc) {
            ++pivot;
        }

        if (order[0]->cursor.doc() == pivotDoc) {
            // All cursors up to the pivot sit on pivotDoc, so each
            // one's *current block* contains it: the sum of the block
            // maxima is a bound on pivotDoc's score that needs no
            // shallow seeks.
            double blockBound = 0.0;
            for (std::size_t i = 0; i <= pivot; ++i) {
                blockBound += order[i]->cursor.blockMaxScore() *
                              order[i]->boundScale;
            }
            if (blockBound >= threshold) {
                // Anytime cap: the next step scores a fresh candidate.
                // Checked only after the shallow test passes, so a
                // capped run stops at exactly the same docsScored
                // count an uncapped run would have accumulated.
                if (result.work.docsScored >= maxScoredDocs) {
                    result.work.truncated = true;
                    break;
                }
                double score = 0.0;
                for (TermCursor &tc : cursors) {
                    if (!tc.cursor.exhausted() &&
                        tc.cursor.doc() == pivotDoc) {
                        score += index.scorePosting(tc.idf,
                                                    tc.cursor.posting());
                        tc.cursor.advance();
                        ++result.work.postingsScored;
                    }
                }
                ++result.work.docsScored;
                if (heap.push({index.globalDoc(pivotDoc), score}))
                    ++result.work.heapInsertions;
            } else {
                // Shallow rejection: no doc covered only by the
                // current blocks of [0..pivot] can reach the heap.
                // Jump past the nearest block boundary (or to the next
                // cursor's doc, whichever is closer) — threshold is
                // finite here, so the heap is full and the skipped
                // range is provably out.
                uint64_t next = endDoc;
                for (std::size_t i = 0; i <= pivot; ++i) {
                    next = std::min<uint64_t>(
                        next,
                        static_cast<uint64_t>(
                            order[i]->cursor.blockLastDoc()) +
                            1);
                }
                if (pivot + 1 < order.size()) {
                    next = std::min<uint64_t>(
                        next, order[pivot + 1]->cursor.doc());
                }
                const auto target = static_cast<LocalDocId>(
                    std::min<uint64_t>(next, endDoc));
                for (std::size_t i = 0; i <= pivot; ++i)
                    order[i]->cursor.seek(target);
            }
        } else {
            // Not aligned yet: advance the strongest cursor before the
            // pivot (same heuristic as WAND).
            TermCursor *advance = order[0];
            for (std::size_t i = 1; i < pivot; ++i) {
                if (order[i]->cursor.doc() < pivotDoc &&
                    order[i]->maxScore > advance->maxScore) {
                    advance = order[i];
                }
            }
            advance->cursor.seek(pivotDoc);
        }
    }

    result.work.docsSkipped = io.docsSkipped;
    result.work.blocksDecoded = io.blocksDecoded;
    result.work.blocksSkipped = io.blocksSkipped;
    result.topK = heap.extractSorted();
    return result;
}

} // namespace cottage
