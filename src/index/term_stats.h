/**
 * @file
 * Indexing-time per-term score statistics.
 *
 * Cottage's two predictors consume only features derived from term
 * statistics computed during the indexing phase (paper §III-B/III-C,
 * Tables I and II). This store computes, for every term of a shard, the
 * full score distribution summary of that term's postings plus the
 * pruning-behaviour features (local maxima, documents ever in top-K,
 * near-max counts) that make service time predictable under
 * MaxScore/WAND.
 */

#ifndef COTTAGE_INDEX_TERM_STATS_H
#define COTTAGE_INDEX_TERM_STATS_H

#include <cstdint>
#include <unordered_map>

#include "index/inverted_index.h"
#include "text/types.h"

namespace cottage {

/** Score-distribution statistics of one term on one shard. */
struct TermStats
{
    /** Shard-local posting-list length (document count). */
    double postingLength = 0.0;

    /** First quartile of per-document scores. */
    double firstQuartile = 0.0;

    /** Median per-document score. */
    double median = 0.0;

    /** Third quartile of per-document scores. */
    double thirdQuartile = 0.0;

    /** Arithmetic mean score. */
    double meanScore = 0.0;

    /** Geometric mean score. */
    double geoMeanScore = 0.0;

    /** Harmonic mean score. */
    double harmMeanScore = 0.0;

    /** Population variance of scores. */
    double scoreVariance = 0.0;

    /** K-th largest score (smallest score when fewer than K docs). */
    double kthScore = 0.0;

    /** Maximum score (the exact pruning bound). */
    double maxScore = 0.0;

    /**
     * Heap insertions while streaming this term's postings in DocId
     * order through a top-K accumulator ("documents ever in top-K",
     * Table II) — a direct proxy for pruning work.
     */
    double docsEverInTopK = 0.0;

    /** Strict local maxima of the DocId-ordered score sequence. */
    double localMaxima = 0.0;

    /** Local maxima whose score exceeds the mean score. */
    double localMaximaAboveMean = 0.0;

    /** Number of documents achieving the maximum score. */
    double numMaxScore = 0.0;

    /** Documents scoring within 5% of the maximum score. */
    double docsNearMax = 0.0;

    /** Documents scoring within 5% of the K-th score. */
    double docsNearKth = 0.0;

    /**
     * Static score upper bound (tf -> infinity limit), the "Estimated
     * max score" approximation of Macdonald et al. [37].
     */
    double estimatedMaxScore = 0.0;

    /** Global IDF of the term. */
    double idf = 0.0;
};

/**
 * All term statistics of one shard, built once at indexing time.
 */
class TermStatsStore
{
  public:
    /**
     * Compute statistics for every term on the shard.
     *
     * @param index The shard's inverted index.
     * @param k Result depth the engine serves (the K of top-K).
     */
    TermStatsStore(const InvertedIndex &index, std::size_t k);

    /** Statistics of a term, or nullptr when the shard lacks it. */
    const TermStats *get(TermId term) const;

    /** Result depth the statistics were computed for. */
    std::size_t k() const { return k_; }

    /** Number of terms with statistics. */
    std::size_t size() const { return stats_.size(); }

  private:
    std::size_t k_;
    std::unordered_map<TermId, TermStats> stats_;
};

} // namespace cottage

#endif // COTTAGE_INDEX_TERM_STATS_H
