#include "index/varbyte.h"

#include "util/logging.h"

namespace cottage {

void
vbyteEncode(uint32_t value, std::vector<uint8_t> &out)
{
    while (value >= 0x80) {
        out.push_back(static_cast<uint8_t>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<uint8_t>(value));
}

uint32_t
vbyteDecode(const std::vector<uint8_t> &bytes, std::size_t &offset)
{
    uint32_t value = 0;
    int shift = 0;
    while (true) {
        COTTAGE_CHECK_MSG(offset < bytes.size(), "truncated vbyte stream");
        const uint8_t byte = bytes[offset++];
        value |= static_cast<uint32_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return value;
        shift += 7;
    }
}

CompressedPostingList::CompressedPostingList(const PostingList &list)
    : term_(list.term), count_(list.size())
{
    bytes_.reserve(list.size() * 2); // typical: ~2 bytes per posting
    LocalDocId last = 0;
    bool first = true;
    for (const Posting &posting : list.postings) {
        const uint32_t gap =
            first ? posting.doc : posting.doc - last - 1;
        COTTAGE_CHECK_MSG(first || posting.doc > last,
                          "postings must ascend by doc");
        vbyteEncode(gap, bytes_);
        vbyteEncode(posting.freq, bytes_);
        last = posting.doc;
        first = false;
    }
    bytes_.shrink_to_fit();
}

Posting
CompressedPostingList::Cursor::next()
{
    COTTAGE_CHECK_MSG(hasNext(), "cursor exhausted");
    const uint32_t gap = vbyteDecode(list_->bytes_, offset_);
    const uint32_t freq = vbyteDecode(list_->bytes_, offset_);
    const LocalDocId doc = read_ == 0 ? gap : lastDoc_ + gap + 1;
    lastDoc_ = doc;
    ++read_;
    return {doc, freq};
}

PostingList
CompressedPostingList::decompress() const
{
    PostingList list;
    list.term = term_;
    list.postings.reserve(count_);
    Cursor cursor(*this);
    while (cursor.hasNext())
        list.postings.push_back(cursor.next());
    return list;
}

} // namespace cottage
