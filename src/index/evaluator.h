/**
 * @file
 * Query-evaluation strategy interface and its work accounting.
 *
 * The work counters are the bridge between real retrieval and the
 * simulated testbed: the cluster simulator converts postings/documents
 * scored into CPU cycles, so the simulated service times inherit the
 * real long-tailed work distribution (Fig. 2a) and respond to dynamic
 * pruning exactly as the paper's Solr deployment does.
 */

#ifndef COTTAGE_INDEX_EVALUATOR_H
#define COTTAGE_INDEX_EVALUATOR_H

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"
#include "index/top_k.h"
#include "text/types.h"

namespace cottage {

/** Work performed while evaluating one query on one shard. */
struct SearchWork
{
    /** Postings decoded and scored. */
    uint64_t postingsScored = 0;

    /** Distinct candidate documents evaluated. */
    uint64_t docsScored = 0;

    /** Top-K heap insertions (a MaxScore/WAND behaviour feature). */
    uint64_t heapInsertions = 0;

    /** Postings skipped by dynamic pruning (never decoded). */
    uint64_t postingsSkipped = 0;

    SearchWork &
    operator+=(const SearchWork &other)
    {
        postingsScored += other.postingsScored;
        docsScored += other.docsScored;
        heapInsertions += other.heapInsertions;
        postingsSkipped += other.postingsSkipped;
        return *this;
    }
};

/** Result of one shard-local query evaluation. */
struct SearchResult
{
    /** Best-first ranking of at most K hits (global DocIds). */
    std::vector<ScoredDoc> topK;

    /** Work accounting for the latency model. */
    SearchWork work;
};

/**
 * One query term with its personalization weight: the term's BM25
 * contribution is multiplied by the weight (1.0 = unpersonalized).
 */
struct WeightedTerm
{
    TermId term = invalidTerm;
    double weight = 1.0;
};

/** Uniform-weight lift of a plain term list. */
std::vector<WeightedTerm> toWeighted(const std::vector<TermId> &terms);

/**
 * A top-K retrieval strategy over one shard. Implementations must all
 * return exactly the same top-K ranking (rank-safe pruning); only the
 * work differs. Tests enforce this equivalence property.
 */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /** Strategy name for reports ("exhaustive", "maxscore", "wand"). */
    virtual const char *name() const = 0;

    /**
     * Evaluate a weighted (personalized) query on a shard.
     *
     * @param index The shard's index.
     * @param terms Distinct query terms with positive weights.
     * @param k Result depth.
     */
    virtual SearchResult search(const InvertedIndex &index,
                                const std::vector<WeightedTerm> &terms,
                                std::size_t k) const = 0;

    /** Convenience: uniform-weight evaluation. */
    SearchResult
    search(const InvertedIndex &index, const std::vector<TermId> &terms,
           std::size_t k) const
    {
        return search(index, toWeighted(terms), k);
    }
};

} // namespace cottage

#endif // COTTAGE_INDEX_EVALUATOR_H
