/**
 * @file
 * Query-evaluation strategy interface and its work accounting.
 *
 * The work counters are the bridge between real retrieval and the
 * simulated testbed: the cluster simulator converts postings/documents
 * scored into CPU cycles, so the simulated service times inherit the
 * real long-tailed work distribution (Fig. 2a) and respond to dynamic
 * pruning exactly as the paper's Solr deployment does.
 */

#ifndef COTTAGE_INDEX_EVALUATOR_H
#define COTTAGE_INDEX_EVALUATOR_H

#include <cstdint>
#include <limits>
#include <vector>

#include "index/inverted_index.h"
#include "index/top_k.h"
#include "text/types.h"

namespace cottage {

/** "No document cap" sentinel for anytime evaluation. */
constexpr uint64_t noDocCap = std::numeric_limits<uint64_t>::max();

/**
 * Half-open shard-local document range [begin, end) an evaluation is
 * restricted to. The parallel traversal driver (src/engine) splits a
 * shard's dense local-id space into contiguous slices, one per worker;
 * the default range covers every document, and evaluating the full
 * range is byte-identical to the pre-range code path.
 *
 * Positioning to `begin` is uncharged (no skip counters): the skipped
 * prefix belongs to *other* workers' slices, so charging it here would
 * double-count work across the slice sum. Work done strictly inside
 * the range is charged exactly as in a full evaluation.
 */
struct DocRange
{
    LocalDocId begin = 0;
    LocalDocId end = std::numeric_limits<LocalDocId>::max();

    /** True when the range covers the whole local-id space. */
    bool
    full() const
    {
        return begin == 0 &&
               end == std::numeric_limits<LocalDocId>::max();
    }
};

/** The whole shard: the default range of every evaluation. */
constexpr DocRange fullDocRange{};

/** Work performed while evaluating one query on one shard. */
struct SearchWork
{
    /** Postings decoded and scored. */
    uint64_t postingsScored = 0;

    /** Distinct candidate documents evaluated. */
    uint64_t docsScored = 0;

    /** Top-K heap insertions (a MaxScore/WAND behaviour feature). */
    uint64_t heapInsertions = 0;

    /** Postings skipped by dynamic pruning (never decoded). */
    uint64_t postingsSkipped = 0;

    /**
     * Candidate documents passed over by seeks without being scored.
     * For the flat evaluators this mirrors seek-skipped postings; for
     * the block-max evaluators it additionally counts the postings of
     * whole skipped blocks, so traces show the pruning savings.
     */
    uint64_t docsSkipped = 0;

    /** Posting blocks decoded by the block-max evaluators. */
    uint64_t blocksDecoded = 0;

    /** Posting blocks skipped undecoded via their block maxima. */
    uint64_t blocksSkipped = 0;

    /**
     * True if the evaluation stopped at its maxScoredDocs cap while
     * scoreable candidates remained: the top-K is the anytime
     * best-so-far, not the full shard ranking.
     */
    bool truncated = false;

    /** Counter-for-counter equality (the bench's repeat-determinism
     *  CHECK and tests compare whole work records). */
    bool operator==(const SearchWork &other) const = default;

    SearchWork &
    operator+=(const SearchWork &other)
    {
        postingsScored += other.postingsScored;
        docsScored += other.docsScored;
        heapInsertions += other.heapInsertions;
        postingsSkipped += other.postingsSkipped;
        docsSkipped += other.docsSkipped;
        blocksDecoded += other.blocksDecoded;
        blocksSkipped += other.blocksSkipped;
        truncated = truncated || other.truncated;
        return *this;
    }
};

/** Result of one shard-local query evaluation. */
struct SearchResult
{
    /** Best-first ranking of at most K hits (global DocIds). */
    std::vector<ScoredDoc> topK;

    /** Work accounting for the latency model. */
    SearchWork work;
};

/**
 * One query term with its personalization weight: the term's BM25
 * contribution is multiplied by the weight (1.0 = unpersonalized).
 */
struct WeightedTerm
{
    TermId term = invalidTerm;
    double weight = 1.0;
};

/** Uniform-weight lift of a plain term list. */
std::vector<WeightedTerm> toWeighted(const std::vector<TermId> &terms);

/**
 * A top-K retrieval strategy over one shard. Implementations must all
 * return exactly the same top-K ranking (rank-safe pruning); only the
 * work differs. Tests enforce this equivalence property.
 *
 * Every strategy is additionally an *anytime* algorithm: capped at
 * maxScoredDocs candidate documents it stops there, returns its
 * best-so-far heap and flags the work as truncated. The cap is counted
 * in deterministic evaluation order, so a capped run is a bit-exact
 * prefix replay — never a wall-clock race (see DESIGN.md §5c).
 */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /** Strategy name for reports ("exhaustive", "maxscore", "wand"). */
    virtual const char *name() const = 0;

    /**
     * Evaluate a weighted (personalized) query on a shard slice.
     *
     * @param index The shard's index.
     * @param terms Distinct query terms with non-zero weights (negative
     *        weights demote; pruning bounds stay rank-safe).
     * @param k Result depth.
     * @param maxScoredDocs Anytime cap: stop after scoring this many
     *        candidate documents (noDocCap = run to completion).
     * @param range Shard-local document slice to evaluate; candidates
     *        outside [range.begin, range.end) are neither scored nor
     *        charged (positioning to the slice start is free — see
     *        DocRange). The slice's top-K is rank-safe over the slice.
     */
    virtual SearchResult search(const InvertedIndex &index,
                                const std::vector<WeightedTerm> &terms,
                                std::size_t k, uint64_t maxScoredDocs,
                                DocRange range) const = 0;

    /** Convenience: whole-shard evaluation. */
    SearchResult
    search(const InvertedIndex &index,
           const std::vector<WeightedTerm> &terms, std::size_t k,
           uint64_t maxScoredDocs) const
    {
        return search(index, terms, k, maxScoredDocs, fullDocRange);
    }

    /** Convenience: uncapped evaluation. */
    SearchResult
    search(const InvertedIndex &index,
           const std::vector<WeightedTerm> &terms, std::size_t k) const
    {
        return search(index, terms, k, noDocCap);
    }

    /** Convenience: uniform-weight evaluation. */
    SearchResult
    search(const InvertedIndex &index, const std::vector<TermId> &terms,
           std::size_t k, uint64_t maxScoredDocs = noDocCap) const
    {
        return search(index, toWeighted(terms), k, maxScoredDocs);
    }
};

} // namespace cottage

#endif // COTTAGE_INDEX_EVALUATOR_H
