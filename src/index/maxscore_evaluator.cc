#include "index/maxscore_evaluator.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace cottage {

namespace {

struct Cursor
{
    const PostingList *list;
    double idf;
    double maxScore;
    std::size_t pos;
    LocalDocId end; // slice end (exclusive); max = whole shard

    /** Past the last posting of the slice; postings beyond `end`
     *  belong to other workers and are never touched or charged. */
    bool
    exhausted() const
    {
        return pos >= list->size() || list->postings[pos].doc >= end;
    }

    LocalDocId
    doc() const
    {
        return list->postings[pos].doc;
    }
};

/** Advance a cursor to the first posting with doc >= target. */
uint64_t
seek(Cursor &cursor, LocalDocId target)
{
    const auto &postings = cursor.list->postings;
    const auto begin = postings.begin() + static_cast<std::ptrdiff_t>(cursor.pos);
    const auto it = std::lower_bound(
        begin, postings.end(), target,
        [](const Posting &p, LocalDocId d) { return p.doc < d; });
    const auto skipped = static_cast<uint64_t>(it - begin);
    cursor.pos += skipped;
    return skipped;
}

} // namespace

SearchResult
MaxScoreEvaluator::search(const InvertedIndex &index,
                          const std::vector<WeightedTerm> &terms,
                          std::size_t k, uint64_t maxScoredDocs,
                          DocRange range) const
{
    SearchResult result;
    TopKHeap heap(k);

    std::vector<Cursor> cursors;
    cursors.reserve(terms.size());
    for (const WeightedTerm &wt : terms) {
        const PostingList *list = index.postings(wt.term);
        if (list != nullptr && !list->empty()) {
            // BM25 is linear in idf, so both the per-posting score and
            // the exact pruning bound scale by the term weight — for
            // positive weights. A negative weight flips the list's
            // largest contribution to its *smallest*; the rank-safe
            // upper bound of a demoting list is 0 (BM25 posting scores
            // are non-negative).
            const double bound =
                wt.weight >= 0.0 ? index.maxScore(wt.term) * wt.weight
                                 : 0.0;
            cursors.push_back({list, index.idf(wt.term) * wt.weight,
                               bound, slicePosition(*list, range.begin),
                               range.end});
        }
    }
    if (cursors.empty() || k == 0) {
        result.topK = heap.extractSorted();
        return result;
    }

    // Ascending by score bound through a sorted index view (original
    // index breaks ties, so the walk order never depends on sort
    // implementation details). Cursors stay in original term order:
    // candidates that survive the bound checks have their
    // contributions re-summed in that order, which makes the scores
    // bit-identical to the exhaustive evaluator's — and, crucially,
    // independent of where the adaptive essential boundary sits, so a
    // DocRange slice of the traversal returns the same bytes as the
    // full walk (the parallel driver's determinism contract).
    std::vector<std::size_t> order(cursors.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (cursors[a].maxScore != cursors[b].maxScore)
                      return cursors[a].maxScore < cursors[b].maxScore;
                  return a < b;
              });
    std::vector<double> prefix(cursors.size() + 1, 0.0);
    for (std::size_t i = 0; i < order.size(); ++i)
        prefix[i + 1] = prefix[i] + cursors[order[i]].maxScore;

    // Non-essential prefix [0, essential): documents appearing only
    // there cannot beat the current threshold. Strict < keeps pruning
    // rank-safe under score ties (equal score can still win by DocId).
    std::size_t essential = 0;
    const auto updateEssential = [&]() {
        if (!heap.full())
            return;
        while (essential < order.size() &&
               prefix[essential + 1] < heap.threshold()) {
            ++essential;
        }
    };

    std::vector<double> contrib(cursors.size(), 0.0);
    std::vector<std::size_t> touched;
    touched.reserve(cursors.size());

    constexpr LocalDocId endDoc = std::numeric_limits<LocalDocId>::max();
    while (essential < order.size()) {
        // Candidate: smallest current doc among essential cursors.
        LocalDocId candidate = endDoc;
        for (std::size_t i = essential; i < order.size(); ++i) {
            if (!cursors[order[i]].exhausted())
                candidate = std::min(candidate, cursors[order[i]].doc());
        }
        if (candidate == endDoc)
            break;
        // Anytime cap: stop before evaluating a fresh candidate.
        if (result.work.docsScored >= maxScoredDocs) {
            result.work.truncated = true;
            break;
        }

        // Score essential contributions. walkScore drives the pruning
        // decisions only; the offered score is re-summed below.
        touched.clear();
        double walkScore = 0.0;
        for (std::size_t i = essential; i < order.size(); ++i) {
            Cursor &cursor = cursors[order[i]];
            if (!cursor.exhausted() && cursor.doc() == candidate) {
                const double value = index.scorePosting(
                    cursor.idf, cursor.list->postings[cursor.pos]);
                ++cursor.pos;
                contrib[order[i]] = value;
                touched.push_back(order[i]);
                walkScore += value;
                ++result.work.postingsScored;
            }
        }
        ++result.work.docsScored;

        // Walk the non-essential lists strongest-first, bailing out as
        // soon as even a full remaining bound cannot reach the heap.
        bool complete = true;
        for (std::size_t i = essential; i-- > 0;) {
            if (heap.full() &&
                walkScore + prefix[i + 1] < heap.threshold()) {
                complete = false;
                break;
            }
            Cursor &cursor = cursors[order[i]];
            const uint64_t skipped = seek(cursor, candidate);
            result.work.postingsSkipped += skipped;
            // Uniform schema with the block-max evaluators: skipped
            // candidates are reported per-doc too.
            result.work.docsSkipped += skipped;
            if (!cursor.exhausted() && cursor.doc() == candidate) {
                const double value = index.scorePosting(
                    cursor.idf, cursor.list->postings[cursor.pos]);
                ++cursor.pos;
                contrib[order[i]] = value;
                touched.push_back(order[i]);
                walkScore += value;
                ++result.work.postingsScored;
            }
        }

        // A broken walk proved the candidate cannot enter the heap;
        // only complete candidates are offered, scored in original
        // term order.
        if (complete) {
            std::sort(touched.begin(), touched.end(),
                      std::less<std::size_t>());
            double score = 0.0;
            for (std::size_t idx : touched)
                score += contrib[idx];
            if (heap.push({index.globalDoc(candidate), score})) {
                ++result.work.heapInsertions;
                updateEssential();
            }
        }
    }

    result.topK = heap.extractSorted();
    return result;
}

} // namespace cottage
