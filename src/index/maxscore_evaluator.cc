#include "index/maxscore_evaluator.h"

#include <algorithm>
#include <limits>

namespace cottage {

namespace {

struct Cursor
{
    const PostingList *list;
    double idf;
    double maxScore;
    std::size_t pos;

    bool
    exhausted() const
    {
        return pos >= list->size();
    }

    LocalDocId
    doc() const
    {
        return list->postings[pos].doc;
    }
};

/** Advance a cursor to the first posting with doc >= target. */
uint64_t
seek(Cursor &cursor, LocalDocId target)
{
    const auto &postings = cursor.list->postings;
    const auto begin = postings.begin() + static_cast<std::ptrdiff_t>(cursor.pos);
    const auto it = std::lower_bound(
        begin, postings.end(), target,
        [](const Posting &p, LocalDocId d) { return p.doc < d; });
    const auto skipped = static_cast<uint64_t>(it - begin);
    cursor.pos += skipped;
    return skipped;
}

} // namespace

SearchResult
MaxScoreEvaluator::search(const InvertedIndex &index,
                          const std::vector<WeightedTerm> &terms,
                          std::size_t k,
                          uint64_t maxScoredDocs) const
{
    SearchResult result;
    TopKHeap heap(k);

    std::vector<Cursor> cursors;
    cursors.reserve(terms.size());
    for (const WeightedTerm &wt : terms) {
        const PostingList *list = index.postings(wt.term);
        if (list != nullptr && !list->empty()) {
            // BM25 is linear in idf, so both the per-posting score and
            // the exact pruning bound scale by the term weight — for
            // positive weights. A negative weight flips the list's
            // largest contribution to its *smallest*; the rank-safe
            // upper bound of a demoting list is 0 (BM25 posting scores
            // are non-negative).
            const double bound =
                wt.weight >= 0.0 ? index.maxScore(wt.term) * wt.weight
                                 : 0.0;
            cursors.push_back(
                {list, index.idf(wt.term) * wt.weight, bound, 0});
        }
    }
    if (cursors.empty() || k == 0) {
        result.topK = heap.extractSorted();
        return result;
    }

    // Ascending by score bound; prefix[i] = sum of bounds of 0..i-1.
    std::sort(cursors.begin(), cursors.end(),
              [](const Cursor &a, const Cursor &b) {
                  return a.maxScore < b.maxScore;
              });
    std::vector<double> prefix(cursors.size() + 1, 0.0);
    for (std::size_t i = 0; i < cursors.size(); ++i)
        prefix[i + 1] = prefix[i] + cursors[i].maxScore;

    // Non-essential prefix [0, essential): documents appearing only
    // there cannot beat the current threshold. Strict < keeps pruning
    // rank-safe under score ties (equal score can still win by DocId).
    std::size_t essential = 0;
    const auto updateEssential = [&]() {
        if (!heap.full())
            return;
        while (essential < cursors.size() &&
               prefix[essential + 1] < heap.threshold()) {
            ++essential;
        }
    };

    constexpr LocalDocId endDoc = std::numeric_limits<LocalDocId>::max();
    while (essential < cursors.size()) {
        // Candidate: smallest current doc among essential cursors.
        LocalDocId candidate = endDoc;
        for (std::size_t i = essential; i < cursors.size(); ++i) {
            if (!cursors[i].exhausted())
                candidate = std::min(candidate, cursors[i].doc());
        }
        if (candidate == endDoc)
            break;
        // Anytime cap: stop before evaluating a fresh candidate.
        if (result.work.docsScored >= maxScoredDocs) {
            result.work.truncated = true;
            break;
        }

        // Score essential contributions.
        double score = 0.0;
        for (std::size_t i = essential; i < cursors.size(); ++i) {
            Cursor &cursor = cursors[i];
            if (!cursor.exhausted() && cursor.doc() == candidate) {
                score += index.scorePosting(cursor.idf,
                                            cursor.list->postings[cursor.pos]);
                ++cursor.pos;
                ++result.work.postingsScored;
            }
        }
        ++result.work.docsScored;

        // Walk the non-essential lists strongest-first, bailing out as
        // soon as even a full remaining bound cannot reach the heap.
        for (std::size_t i = essential; i-- > 0;) {
            if (heap.full() && score + prefix[i + 1] < heap.threshold())
                break;
            Cursor &cursor = cursors[i];
            const uint64_t skipped = seek(cursor, candidate);
            result.work.postingsSkipped += skipped;
            // Uniform schema with the block-max evaluators: skipped
            // candidates are reported per-doc too.
            result.work.docsSkipped += skipped;
            if (!cursor.exhausted() && cursor.doc() == candidate) {
                score += index.scorePosting(cursor.idf,
                                            cursor.list->postings[cursor.pos]);
                ++cursor.pos;
                ++result.work.postingsScored;
            }
        }

        if (heap.push({index.globalDoc(candidate), score})) {
            ++result.work.heapInsertions;
            updateEssential();
        }
    }

    result.topK = heap.extractSorted();
    return result;
}

} // namespace cottage
