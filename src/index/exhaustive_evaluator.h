/**
 * @file
 * Exhaustive document-at-a-time evaluation: every posting of every
 * query term is decoded and scored. This is the paper's baseline
 * retrieval and the source of quality ground truth.
 */

#ifndef COTTAGE_INDEX_EXHAUSTIVE_EVALUATOR_H
#define COTTAGE_INDEX_EXHAUSTIVE_EVALUATOR_H

#include "index/evaluator.h"

namespace cottage {

/** Full DAAT scoring without pruning. */
class ExhaustiveEvaluator : public Evaluator
{
  public:
    const char *name() const override { return "exhaustive"; }

    using Evaluator::search;

    SearchResult search(const InvertedIndex &index,
                        const std::vector<WeightedTerm> &terms,
                        std::size_t k, uint64_t maxScoredDocs,
                        DocRange range) const override;
};

} // namespace cottage

#endif // COTTAGE_INDEX_EXHAUSTIVE_EVALUATOR_H
