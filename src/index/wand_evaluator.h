/**
 * @file
 * WAND dynamic pruning (Broder et al. [3]).
 *
 * Rank-safe pivot-based skipping; like MaxScore it returns exactly the
 * exhaustive top-K while decoding far fewer postings. Provided both as
 * a second production retrieval mode and as an independent oracle for
 * the evaluator-equivalence property tests.
 */

#ifndef COTTAGE_INDEX_WAND_EVALUATOR_H
#define COTTAGE_INDEX_WAND_EVALUATOR_H

#include "index/evaluator.h"

namespace cottage {

/** Document-at-a-time WAND. */
class WandEvaluator : public Evaluator
{
  public:
    const char *name() const override { return "wand"; }

    using Evaluator::search;

    SearchResult search(const InvertedIndex &index,
                        const std::vector<WeightedTerm> &terms,
                        std::size_t k, uint64_t maxScoredDocs,
                        DocRange range) const override;
};

} // namespace cottage

#endif // COTTAGE_INDEX_WAND_EVALUATOR_H
