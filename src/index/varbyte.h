/**
 * @file
 * Variable-byte (VByte) codec and delta-compressed posting lists.
 *
 * Production engines (Lucene included) store postings delta-gap
 * compressed; the paper's index sizes and traversal costs assume it.
 * This module provides the codec, a compressed posting-list container
 * with a sequential cursor, and footprint accounting so the index can
 * report realistic memory numbers.
 */

#ifndef COTTAGE_INDEX_VARBYTE_H
#define COTTAGE_INDEX_VARBYTE_H

#include <cstdint>
#include <vector>

#include "index/postings.h"

namespace cottage {

/** Append one value, VByte-encoded (7 bits per byte, MSB = continue). */
void vbyteEncode(uint32_t value, std::vector<uint8_t> &out);

/**
 * Decode one value starting at @p offset; advances @p offset past the
 * consumed bytes. Truncated input (a stream ending mid-value or an
 * offset past the end) fails a COTTAGE_CHECK rather than reading out
 * of bounds — active in every build type, and the same contract holds
 * for reading past the end through CompressedPostingList::Cursor.
 */
uint32_t vbyteDecode(const std::vector<uint8_t> &bytes, std::size_t &offset);

/**
 * A posting list stored as VByte-encoded (doc-gap, freq) pairs.
 * Iteration is strictly sequential — exactly what TAAT and the
 * exhaustive DAAT need; the pruning evaluators keep the uncompressed
 * form for O(log n) skipping.
 */
class CompressedPostingList
{
  public:
    CompressedPostingList() = default;

    /** Compress an uncompressed list (ascending doc ids). */
    explicit CompressedPostingList(const PostingList &list);

    TermId term() const { return term_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Compressed footprint in bytes. */
    std::size_t bytes() const { return bytes_.size(); }

    /** Decompress back to the flat form (for tests and conversion). */
    PostingList decompress() const;

    /** Sequential read cursor. */
    class Cursor
    {
      public:
        explicit Cursor(const CompressedPostingList &list)
            : list_(&list)
        {
        }

        /** True while another posting is available. */
        bool
        hasNext() const
        {
            return read_ < list_->count_;
        }

        /** Decode and return the next posting. */
        Posting next();

      private:
        const CompressedPostingList *list_;
        std::size_t offset_ = 0;
        std::size_t read_ = 0;
        LocalDocId lastDoc_ = 0;
    };

    Cursor cursor() const { return Cursor(*this); }

  private:
    friend class Cursor;

    TermId term_ = invalidTerm;
    std::size_t count_ = 0;
    std::vector<uint8_t> bytes_;
};

} // namespace cottage

#endif // COTTAGE_INDEX_VARBYTE_H
