#include "nn/mlp.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "util/logging.h"

namespace cottage {

namespace {

/** In-place numerically-stable softmax of one row. */
void
softmaxRow(double *row, std::size_t n)
{
    double peak = row[0];
    for (std::size_t i = 1; i < n; ++i)
        peak = std::max(peak, row[i]);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - peak);
        total += row[i];
    }
    for (std::size_t i = 0; i < n; ++i)
        row[i] /= total;
}

} // namespace

MlpClassifier::MlpClassifier(const MlpConfig &config)
    : config_(config)
{
    COTTAGE_CHECK_MSG(config.inputDim >= 1, "MLP needs input features");
    COTTAGE_CHECK_MSG(config.numClasses >= 2, "MLP needs >= 2 classes");

    featureMean_.assign(config.inputDim, 0.0);
    featureStd_.assign(config.inputDim, 1.0);

    std::vector<std::size_t> widths;
    widths.push_back(config.inputDim);
    for (std::size_t h : config.hiddenLayers) {
        COTTAGE_CHECK_MSG(h >= 1, "hidden layer width must be positive");
        widths.push_back(h);
    }
    widths.push_back(config.numClasses);

    Rng rng(config.seed);
    layers_.resize(widths.size() - 1);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const std::size_t fanIn = widths[l];
        const std::size_t fanOut = widths[l + 1];
        Layer &layer = layers_[l];
        layer.weights = Matrix(fanIn, fanOut);
        layer.bias.assign(fanOut, 0.0);
        // He-normal initialization suits ReLU layers.
        const double scale = std::sqrt(2.0 / static_cast<double>(fanIn));
        for (std::size_t i = 0; i < fanIn; ++i)
            for (std::size_t j = 0; j < fanOut; ++j)
                layer.weights(i, j) = rng.normal(0.0, scale);
        layer.mWeights = Matrix(fanIn, fanOut);
        layer.vWeights = Matrix(fanIn, fanOut);
        layer.mBias.assign(fanOut, 0.0);
        layer.vBias.assign(fanOut, 0.0);
    }
}

void
MlpClassifier::fitNormalization(const Dataset &data)
{
    COTTAGE_CHECK(data.numFeatures() == config_.inputDim);
    COTTAGE_CHECK_MSG(!data.empty(), "cannot fit normalization on nothing");
    const double n = static_cast<double>(data.size());
    featureMean_.assign(config_.inputDim, 0.0);
    featureStd_.assign(config_.inputDim, 0.0);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double *row = data.features(i);
        for (std::size_t f = 0; f < config_.inputDim; ++f)
            featureMean_[f] += row[f];
    }
    for (double &m : featureMean_)
        m /= n;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double *row = data.features(i);
        for (std::size_t f = 0; f < config_.inputDim; ++f) {
            const double d = row[f] - featureMean_[f];
            featureStd_[f] += d * d;
        }
    }
    for (double &s : featureStd_) {
        s = std::sqrt(s / n);
        if (s < 1e-9)
            s = 1.0; // constant feature: leave it centered only
    }
}

std::vector<double>
MlpClassifier::normalize(const double *features) const
{
    std::vector<double> out(config_.inputDim);
    for (std::size_t f = 0; f < config_.inputDim; ++f)
        out[f] = (features[f] - featureMean_[f]) / featureStd_[f];
    return out;
}

void
MlpClassifier::forward(const Matrix &input,
                       std::vector<Matrix> &activations) const
{
    activations.clear();
    activations.reserve(layers_.size() + 1);
    activations.push_back(input);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        Matrix z(activations.back().rows(), layer.weights.cols());
        matmul(activations.back(), layer.weights, z);
        const bool hidden = l + 1 < layers_.size();
        for (std::size_t r = 0; r < z.rows(); ++r) {
            double *row = z.row(r);
            for (std::size_t c = 0; c < z.cols(); ++c) {
                row[c] += layer.bias[c];
                if (hidden && row[c] < 0.0)
                    row[c] = 0.0; // ReLU
            }
        }
        activations.push_back(std::move(z));
    }
}

double
MlpClassifier::train(const Dataset &data, std::size_t iterations,
                     const AdamConfig &adam)
{
    COTTAGE_CHECK(data.numFeatures() == config_.inputDim);
    COTTAGE_CHECK_MSG(!data.empty(), "cannot train on an empty dataset");
    for (uint32_t label : data.labels())
        COTTAGE_CHECK_MSG(label < config_.numClasses, "label out of range");

    Rng rng(config_.seed ^ 0x5bd1e995u ^ adamStep_);
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::size_t cursor = 0;

    const std::size_t batchSize = std::min(adam.batchSize, data.size());
    Matrix batch(batchSize, config_.inputDim);
    std::vector<uint32_t> batchLabels(batchSize);
    std::vector<Matrix> activations;
    double lastLoss = 0.0;

    for (std::size_t iter = 0; iter < iterations; ++iter) {
        // Assemble the next minibatch (reshuffle at epoch boundaries).
        for (std::size_t b = 0; b < batchSize; ++b) {
            if (cursor >= order.size()) {
                rng.shuffle(order);
                cursor = 0;
            }
            const std::size_t sample = order[cursor++];
            const std::vector<double> normalized =
                normalize(data.features(sample));
            std::copy(normalized.begin(), normalized.end(), batch.row(b));
            batchLabels[b] = data.label(sample);
        }

        forward(batch, activations);

        // Softmax + cross-entropy gradient at the output.
        Matrix delta = activations.back();
        double batchLoss = 0.0;
        for (std::size_t r = 0; r < batchSize; ++r) {
            double *row = delta.row(r);
            softmaxRow(row, config_.numClasses);
            const double p = std::max(row[batchLabels[r]], 1e-12);
            batchLoss -= std::log(p);
            row[batchLabels[r]] -= 1.0;
            for (std::size_t c = 0; c < config_.numClasses; ++c)
                row[c] /= static_cast<double>(batchSize);
        }
        lastLoss = batchLoss / static_cast<double>(batchSize);

        // Backpropagate and apply one Adam step per layer.
        ++adamStep_;
        const double correction1 =
            1.0 - std::pow(adam.beta1, static_cast<double>(adamStep_));
        const double correction2 =
            1.0 - std::pow(adam.beta2, static_cast<double>(adamStep_));

        for (std::size_t l = layers_.size(); l-- > 0;) {
            Layer &layer = layers_[l];
            const Matrix &activationIn = activations[l];

            Matrix gradW(layer.weights.rows(), layer.weights.cols());
            matmulTransposeA(activationIn, delta, gradW);
            std::vector<double> gradB(layer.bias.size(), 0.0);
            for (std::size_t r = 0; r < delta.rows(); ++r) {
                const double *row = delta.row(r);
                for (std::size_t c = 0; c < delta.cols(); ++c)
                    gradB[c] += row[c];
            }

            if (l > 0) {
                Matrix next(delta.rows(), layer.weights.rows());
                matmulTransposeB(delta, layer.weights, next);
                // ReLU derivative: gate by the post-activation sign.
                for (std::size_t r = 0; r < next.rows(); ++r) {
                    double *row = next.row(r);
                    const double *act = activationIn.row(r);
                    for (std::size_t c = 0; c < next.cols(); ++c) {
                        if (act[c] <= 0.0)
                            row[c] = 0.0;
                    }
                }
                delta = std::move(next);
            }

            // Adam.
            const auto update = [&](double &param, double grad, double &m,
                                    double &v) {
                m = adam.beta1 * m + (1.0 - adam.beta1) * grad;
                v = adam.beta2 * v + (1.0 - adam.beta2) * grad * grad;
                const double mHat = m / correction1;
                const double vHat = v / correction2;
                param -=
                    adam.learningRate * mHat / (std::sqrt(vHat) + adam.epsilon);
            };
            for (std::size_t i = 0; i < layer.weights.size(); ++i) {
                update(layer.weights.data()[i], gradW.data()[i],
                       layer.mWeights.data()[i], layer.vWeights.data()[i]);
                // Decoupled (AdamW-style) weight decay.
                if (adam.weightDecay > 0.0) {
                    layer.weights.data()[i] -= adam.learningRate *
                                               adam.weightDecay *
                                               layer.weights.data()[i];
                }
            }
            for (std::size_t c = 0; c < layer.bias.size(); ++c)
                update(layer.bias[c], gradB[c], layer.mBias[c],
                       layer.vBias[c]);
        }
    }
    return lastLoss;
}

std::vector<double>
MlpClassifier::forwardSingle(const std::vector<double> &input) const
{
    std::vector<double> current = input;
    std::vector<double> next;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::size_t fanOut = layer.weights.cols();
        next.assign(layer.bias.begin(), layer.bias.end());
        for (std::size_t i = 0; i < current.size(); ++i) {
            const double v = current[i];
            if (v == 0.0)
                continue;
            const double *wRow = layer.weights.row(i);
            for (std::size_t j = 0; j < fanOut; ++j)
                next[j] += v * wRow[j];
        }
        const bool hidden = l + 1 < layers_.size();
        if (hidden) {
            for (double &v : next)
                if (v < 0.0)
                    v = 0.0;
        }
        current.swap(next);
    }
    softmaxRow(current.data(), current.size());
    return current;
}

double
MlpClassifier::loss(const Dataset &data) const
{
    COTTAGE_CHECK(!data.empty());
    double total = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto probs = forwardSingle(normalize(data.features(i)));
        total -= std::log(std::max(probs[data.label(i)], 1e-12));
    }
    return total / static_cast<double>(data.size());
}

double
MlpClassifier::accuracy(const Dataset &data) const
{
    COTTAGE_CHECK(!data.empty());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        correct += predict(data.features(i)) == data.label(i);
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

uint32_t
MlpClassifier::predict(const double *features) const
{
    const auto probs = forwardSingle(normalize(features));
    return static_cast<uint32_t>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

uint32_t
MlpClassifier::predict(const std::vector<double> &features) const
{
    COTTAGE_CHECK(features.size() == config_.inputDim);
    return predict(features.data());
}

std::vector<double>
MlpClassifier::probabilities(const double *features) const
{
    return forwardSingle(normalize(features));
}

double
MlpClassifier::expectedClass(const double *features) const
{
    const auto probs = forwardSingle(normalize(features));
    double expected = 0.0;
    for (std::size_t c = 0; c < probs.size(); ++c)
        expected += static_cast<double>(c) * probs[c];
    return expected;
}

std::size_t
MlpClassifier::numParameters() const
{
    std::size_t total = 0;
    for (const Layer &layer : layers_)
        total += layer.weights.size() + layer.bias.size();
    return total;
}

void
MlpClassifier::save(std::ostream &out) const
{
    out.precision(17);
    out << "cottage-mlp 1\n";
    out << config_.inputDim << ' ' << config_.numClasses << ' '
        << config_.hiddenLayers.size();
    for (std::size_t h : config_.hiddenLayers)
        out << ' ' << h;
    out << '\n';
    for (double m : featureMean_)
        out << m << ' ';
    out << '\n';
    for (double s : featureStd_)
        out << s << ' ';
    out << '\n';
    for (const Layer &layer : layers_) {
        for (std::size_t i = 0; i < layer.weights.size(); ++i)
            out << layer.weights.data()[i] << ' ';
        out << '\n';
        for (double b : layer.bias)
            out << b << ' ';
        out << '\n';
    }
}

MlpClassifier
MlpClassifier::load(std::istream &in)
{
    std::string magic;
    int version = 0;
    in >> magic >> version;
    if (magic != "cottage-mlp" || version != 1)
        fatal("not a cottage MLP model file");

    MlpConfig config;
    std::size_t numHidden = 0;
    in >> config.inputDim >> config.numClasses >> numHidden;
    config.hiddenLayers.resize(numHidden);
    for (std::size_t &h : config.hiddenLayers)
        in >> h;

    MlpClassifier model(config);
    for (double &m : model.featureMean_)
        in >> m;
    for (double &s : model.featureStd_)
        in >> s;
    for (Layer &layer : model.layers_) {
        for (std::size_t i = 0; i < layer.weights.size(); ++i)
            in >> layer.weights.data()[i];
        for (double &b : layer.bias)
            in >> b;
    }
    if (!in)
        fatal("truncated cottage MLP model file");
    return model;
}

} // namespace cottage
