/**
 * @file
 * Multi-layer perceptron classifier with ReLU activations, softmax
 * output, sparse categorical cross-entropy loss and the Adam optimizer
 * — exactly the architecture the paper trains with Keras (§III-B:
 * 5 hidden layers x 128 ReLU neurons, Adam, sparse categorical
 * cross-entropy). Implemented from scratch on the Matrix type.
 *
 * Input features are standardized (z-scored) with statistics captured
 * from the training set; the trained normalization travels with the
 * model through save()/load().
 */

#ifndef COTTAGE_NN_MLP_H
#define COTTAGE_NN_MLP_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/dataset.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace cottage {

/** Network shape. */
struct MlpConfig
{
    /** Input feature count. */
    std::size_t inputDim = 0;

    /** Number of output classes. */
    std::size_t numClasses = 0;

    /** Hidden layer widths (paper default: five layers of 128). */
    std::vector<std::size_t> hiddenLayers = {128, 128, 128, 128, 128};

    /** Weight-initialization seed. */
    uint64_t seed = 1234;
};

/** Optimization hyper-parameters. */
struct AdamConfig
{
    double learningRate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    std::size_t batchSize = 64;

    /**
     * Decoupled weight decay (AdamW). Applied to weights only, not
     * biases. 0 disables it.
     */
    double weightDecay = 0.0;
};

/** ReLU MLP classifier trained with Adam on softmax cross-entropy. */
class MlpClassifier
{
  public:
    explicit MlpClassifier(const MlpConfig &config);

    const MlpConfig &config() const { return config_; }

    /**
     * Capture feature standardization statistics from a training set.
     * Must be called before train() / predictions (the constructor
     * starts with identity normalization, so it is optional for
     * already-normalized data).
     */
    void fitNormalization(const Dataset &data);

    /**
     * Run @p iterations minibatch Adam steps over the dataset
     * (samples drawn round-robin from a reshuffled order each epoch).
     *
     * @return Mean training loss of the final iteration.
     */
    double train(const Dataset &data, std::size_t iterations,
                 const AdamConfig &adam = {});

    /** Mean cross-entropy loss over a dataset. */
    double loss(const Dataset &data) const;

    /** Classification accuracy over a dataset, in [0, 1]. */
    double accuracy(const Dataset &data) const;

    /** Most probable class of a single sample. */
    uint32_t predict(const double *features) const;
    uint32_t predict(const std::vector<double> &features) const;

    /** Full softmax distribution of a single sample. */
    std::vector<double> probabilities(const double *features) const;

    /**
     * Expected class index under the softmax distribution. Useful when
     * classes are ordered bins (the latency predictor's buckets).
     */
    double expectedClass(const double *features) const;

    /** Serialize the model (architecture, normalization, weights). */
    void save(std::ostream &out) const;

    /** Restore a model saved with save(). Fatal on malformed input. */
    static MlpClassifier load(std::istream &in);

    /** Total trainable parameter count. */
    std::size_t numParameters() const;

  private:
    struct Layer
    {
        Matrix weights; // in x out
        std::vector<double> bias;

        // Adam state.
        Matrix mWeights;
        Matrix vWeights;
        std::vector<double> mBias;
        std::vector<double> vBias;
    };

    /** Forward pass for a batch; fills activations_ (post-ReLU). */
    void forward(const Matrix &input, std::vector<Matrix> &activations) const;

    /** Apply normalization to one raw sample. */
    std::vector<double> normalize(const double *features) const;

    /** Softmax probabilities of one normalized sample (no batch). */
    std::vector<double> forwardSingle(const std::vector<double> &input) const;

    MlpConfig config_;
    std::vector<Layer> layers_;
    std::vector<double> featureMean_;
    std::vector<double> featureStd_;
    uint64_t adamStep_ = 0;
};

} // namespace cottage

#endif // COTTAGE_NN_MLP_H
