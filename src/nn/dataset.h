/**
 * @file
 * In-memory labeled dataset for classifier training.
 */

#ifndef COTTAGE_NN_DATASET_H
#define COTTAGE_NN_DATASET_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace cottage {

/** Flat feature matrix plus integer class labels. */
class Dataset
{
  public:
    explicit Dataset(std::size_t numFeatures) : numFeatures_(numFeatures) {}

    /** Append one labeled sample; the feature count must match. */
    void
    add(const std::vector<double> &features, uint32_t label)
    {
        COTTAGE_CHECK(features.size() == numFeatures_);
        features_.insert(features_.end(), features.begin(), features.end());
        labels_.push_back(label);
    }

    std::size_t size() const { return labels_.size(); }
    std::size_t numFeatures() const { return numFeatures_; }
    bool empty() const { return labels_.empty(); }

    /** Pointer to sample i's feature row. */
    const double *
    features(std::size_t i) const
    {
        return features_.data() + i * numFeatures_;
    }

    uint32_t label(std::size_t i) const { return labels_[i]; }
    const std::vector<uint32_t> &labels() const { return labels_; }

  private:
    std::size_t numFeatures_;
    std::vector<double> features_;
    std::vector<uint32_t> labels_;
};

} // namespace cottage

#endif // COTTAGE_NN_DATASET_H
