#include "nn/matrix.h"

#include "util/logging.h"

namespace cottage {

void
matmul(const Matrix &a, const Matrix &b, Matrix &c)
{
    COTTAGE_CHECK(a.cols() == b.rows());
    COTTAGE_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
    c.setZero();
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    // i-k-j order: unit-stride inner loop over both B and C rows.
    for (std::size_t i = 0; i < m; ++i) {
        double *cRow = c.row(i);
        const double *aRow = a.row(i);
        for (std::size_t p = 0; p < k; ++p) {
            const double av = aRow[p];
            if (av == 0.0)
                continue;
            const double *bRow = b.row(p);
            for (std::size_t j = 0; j < n; ++j)
                cRow[j] += av * bRow[j];
        }
    }
}

void
matmulTransposeA(const Matrix &a, const Matrix &b, Matrix &c)
{
    COTTAGE_CHECK(a.rows() == b.rows());
    COTTAGE_CHECK(c.rows() == a.cols() && c.cols() == b.cols());
    c.setZero();
    const std::size_t k = a.rows();
    const std::size_t m = a.cols();
    const std::size_t n = b.cols();
    for (std::size_t p = 0; p < k; ++p) {
        const double *aRow = a.row(p);
        const double *bRow = b.row(p);
        for (std::size_t i = 0; i < m; ++i) {
            const double av = aRow[i];
            if (av == 0.0)
                continue;
            double *cRow = c.row(i);
            for (std::size_t j = 0; j < n; ++j)
                cRow[j] += av * bRow[j];
        }
    }
}

void
matmulTransposeB(const Matrix &a, const Matrix &b, Matrix &c)
{
    COTTAGE_CHECK(a.cols() == b.cols());
    COTTAGE_CHECK(c.rows() == a.rows() && c.cols() == b.rows());
    c.setZero();
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const double *aRow = a.row(i);
        double *cRow = c.row(i);
        for (std::size_t j = 0; j < n; ++j) {
            const double *bRow = b.row(j);
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p)
                acc += aRow[p] * bRow[p];
            cRow[j] = acc;
        }
    }
}

} // namespace cottage
