/**
 * @file
 * Minimal dense row-major matrix used by the neural-network library.
 *
 * The paper's predictors are small MLPs (5 hidden layers x 128
 * neurons); a straightforward loop-nest GEMM is plenty at this scale
 * and keeps the code dependency-free and auditable.
 */

#ifndef COTTAGE_NN_MATRIX_H
#define COTTAGE_NN_MATRIX_H

#include <cstddef>
#include <vector>

namespace cottage {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw row pointer (row-major layout). */
    double *row(std::size_t r) { return data_.data() + r * cols_; }
    const double *row(std::size_t r) const { return data_.data() + r * cols_; }

    double *data() { return data_.data(); }
    const double *data() const { return data_.data(); }

    /** Reset all entries to zero, keeping the shape. */
    void
    setZero()
    {
        std::fill(data_.begin(), data_.end(), 0.0);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** C = A (m x k) * B (k x n). C must be m x n. */
void matmul(const Matrix &a, const Matrix &b, Matrix &c);

/** C = A^T (k x m -> m x k view) * B (k x n). C must be m x n. */
void matmulTransposeA(const Matrix &a, const Matrix &b, Matrix &c);

/** C = A (m x k) * B^T (n x k -> k x n view). C must be m x n. */
void matmulTransposeB(const Matrix &a, const Matrix &b, Matrix &c);

} // namespace cottage

#endif // COTTAGE_NN_MATRIX_H
