/**
 * @file
 * Query traces: generation, replay ordering and (de)serialization.
 *
 * The paper drives its evaluation with two traces — a Wikipedia access
 * trace [27] and the Lucene nightly benchmark queries [9]. We replace
 * them with two synthetic trace flavors whose knobs (query length mix,
 * term-popularity exponent, arrival rate) are tuned to differ the same
 * way the paper's two traces differ: "wikipedia" has shorter queries
 * over more popular terms; "lucene" has longer queries over rarer
 * terms, i.e. more dispersed per-query work.
 */

#ifndef COTTAGE_TEXT_TRACE_H
#define COTTAGE_TEXT_TRACE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "text/query.h"
#include "util/rng.h"

namespace cottage {

/** Pre-defined trace flavors mirroring the paper's two workloads. */
enum class TraceFlavor {
    Wikipedia,
    Lucene,
};

/** Human-readable flavor name ("wikipedia" / "lucene"). */
const char *traceFlavorName(TraceFlavor flavor);

/** Parameters of a generated query trace. */
struct TraceConfig
{
    TraceFlavor flavor = TraceFlavor::Wikipedia;

    /** Number of queries to generate. */
    uint64_t numQueries = 10000;

    /** Vocabulary size to draw terms from (match the corpus). */
    uint32_t vocabSize = 60000;

    /** Mean arrival rate in queries per second (Poisson process). */
    double arrivalQps = 10.0;

    /**
     * Diurnal/bursty load: the instantaneous arrival rate is
     * qps * (1 + burstiness * sin(2*pi*t / burstPeriodSeconds)).
     * 0 (default) is a homogeneous Poisson process; values toward 1
     * produce the load spikes visible in the paper's Fig. 10 timeline.
     * Must lie in [0, 1).
     */
    double burstiness = 0.0;

    /** Period of the load oscillation, seconds. */
    double burstPeriodSeconds = 20.0;

    /**
     * Fraction of queries carrying personalized term weights (the
     * paper's future-work scenario). 0 (default) reproduces the
     * paper's unpersonalized evaluation.
     */
    double personalizedFraction = 0.0;

    /** Personalized weights draw uniformly from this range. */
    double minTermWeight = 0.5;
    double maxTermWeight = 2.0;

    /** Master seed. */
    uint64_t seed = 7;
};

/** An ordered sequence of timed queries. */
class QueryTrace
{
  public:
    QueryTrace() = default;

    /** Generate a trace of the given flavor. */
    static QueryTrace generate(const TraceConfig &config);

    /** Parse a trace from its serialized form. Fatal on bad input. */
    static QueryTrace load(std::istream &in);

    /** Serialize: one line per query, "arrival term term ...". */
    void save(std::ostream &out) const;

    const std::vector<Query> &queries() const { return queries_; }
    std::size_t size() const { return queries_.size(); }
    const Query &query(std::size_t i) const { return queries_.at(i); }

    /** Simulated duration: arrival time of the last query. */
    double durationSeconds() const;

    /** Flavor name this trace was generated with ("custom" if loaded). */
    const std::string &name() const { return name_; }

    /** Append a query (used by tests and custom workloads). */
    void append(Query query);

    /** Set the trace name. */
    void setName(std::string name) { name_ = std::move(name); }

  private:
    std::string name_ = "custom";
    std::vector<Query> queries_;
};

} // namespace cottage

#endif // COTTAGE_TEXT_TRACE_H
