#include "text/corpus.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/logging.h"
#include "util/zipf.h"

namespace cottage {

Corpus::Corpus(const CorpusConfig &config)
    : config_(config),
      vocabulary_(std::make_shared<Vocabulary>(config.vocabSize))
{
}

Corpus
Corpus::generate(const CorpusConfig &config)
{
    COTTAGE_CHECK_MSG(config.numDocs >= 1, "corpus needs documents");
    COTTAGE_CHECK_MSG(config.vocabSize >= 2, "corpus needs a vocabulary");
    COTTAGE_CHECK_MSG(config.topicMix >= 0.0 && config.topicMix <= 1.0,
                      "topicMix must be a fraction");
    COTTAGE_CHECK_MSG(config.numTopics >= 1, "corpus needs >= 1 topic");

    Corpus corpus(config);
    Rng master(config.seed);
    Rng rng = master.split();

    const ZipfSampler globalTerms(config.vocabSize, config.zipfExponent);

    // Each topic owns a contiguous slice of the mid/low-popularity
    // vocabulary. Topical tokens are drawn Zipf-within-slice, which
    // makes those terms bursty: frequent in on-topic documents, absent
    // elsewhere.
    const uint64_t topicAreaStart =
        std::min<uint64_t>(256, config.vocabSize / 8);
    const uint64_t topicArea = config.vocabSize - topicAreaStart;
    const uint64_t topicWidth =
        std::max<uint64_t>(8, topicArea / config.numTopics);
    const ZipfSampler topicLocal(topicWidth, 1.2);

    // Lognormal document lengths with the configured mean:
    // mean = exp(mu + sigma^2 / 2)  =>  mu = log(mean) - sigma^2 / 2.
    const double sigma = config.docLengthSigma;
    const double mu = std::log(config.meanDocLength) - 0.5 * sigma * sigma;

    corpus.documents_.resize(config.numDocs);
    std::vector<TermId> tokens;
    for (uint32_t d = 0; d < config.numDocs; ++d) {
        Document &doc = corpus.documents_[d];
        doc.id = d;

        const double drawnLength = rng.lognormal(mu, sigma);
        const uint32_t length = std::max<uint32_t>(
            8, static_cast<uint32_t>(std::lround(drawnLength)));

        const uint64_t topic =
            config.clusteredTopics
                ? (static_cast<uint64_t>(d) * config.numTopics) /
                      config.numDocs
                : static_cast<uint64_t>(
                      rng.uniformInt(0, config.numTopics - 1));
        const uint64_t topicStart =
            topicAreaStart +
            (topic * topicWidth) % std::max<uint64_t>(1, topicArea);

        tokens.clear();
        tokens.reserve(length);
        for (uint32_t t = 0; t < length; ++t) {
            uint64_t rank;
            if (rng.bernoulli(config.topicMix)) {
                rank = topicStart + topicLocal.sample(rng) - 1;
                if (rank >= config.vocabSize)
                    rank = config.vocabSize - 1;
            } else {
                rank = globalTerms.sample(rng) - 1;
            }
            tokens.push_back(static_cast<TermId>(rank));
        }

        std::sort(tokens.begin(), tokens.end(), std::less<TermId>());
        doc.terms.clear();
        for (std::size_t i = 0; i < tokens.size();) {
            std::size_t j = i;
            while (j < tokens.size() && tokens[j] == tokens[i])
                ++j;
            doc.terms.push_back(
                {tokens[i], static_cast<uint32_t>(j - i)});
            i = j;
        }
        doc.length = length;
        corpus.totalTokens_ += length;
    }
    return corpus;
}

const Document &
Corpus::document(DocId id) const
{
    COTTAGE_CHECK(id < documents_.size());
    return documents_[id];
}

double
Corpus::averageDocLength() const
{
    if (documents_.empty())
        return 0.0;
    return static_cast<double>(totalTokens_) /
           static_cast<double>(documents_.size());
}

} // namespace cottage
