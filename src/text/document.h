/**
 * @file
 * Bag-of-words document representation. Positions are not needed by
 * BM25 or by any of the paper's mechanisms, so a document is a sorted
 * (termId, frequency) list plus its total length.
 */

#ifndef COTTAGE_TEXT_DOCUMENT_H
#define COTTAGE_TEXT_DOCUMENT_H

#include <cstdint>
#include <vector>

#include "text/types.h"

namespace cottage {

/** One term occurrence count inside a document. */
struct TermFreq
{
    TermId term;
    uint32_t freq;
};

/** A bag-of-words document. */
struct Document
{
    /** Global document id (unique across all shards). */
    DocId id = invalidDoc;

    /** Distinct terms with counts, ascending by term id. */
    std::vector<TermFreq> terms;

    /** Total token count (sum of freqs). */
    uint32_t length = 0;
};

} // namespace cottage

#endif // COTTAGE_TEXT_DOCUMENT_H
