/**
 * @file
 * Query representation shared by the trace generators, the engine and
 * the predictors.
 */

#ifndef COTTAGE_TEXT_QUERY_H
#define COTTAGE_TEXT_QUERY_H

#include <cstdint>
#include <string>
#include <vector>

#include "text/types.h"
#include "text/vocabulary.h"

namespace cottage {

/** A search query: one or more terms plus trace metadata. */
struct Query
{
    /** Position in the trace. */
    QueryId id = 0;

    /** Distinct query terms. */
    std::vector<TermId> terms;

    /**
     * Personalized term weights (the paper's future-work extension:
     * "customized term weights ... based on the user profile").
     * Either empty (uniform weights, the paper's evaluated setting) or
     * parallel to terms with strictly positive multipliers applied to
     * each term's BM25 contribution.
     */
    std::vector<double> weights;

    /** Arrival time in simulated seconds from trace start. */
    double arrivalSeconds = 0.0;

    /**
     * Owning tenant in a multi-tenant scenario (index into the
     * scenario's tenant list; 0 — the only tenant — outside one).
     * Flows into QueryMeasurement and the tracer so per-tenant
     * latency, quality and energy roll up separately.
     */
    uint32_t tenant = 0;

    /** True when per-term weights are attached. */
    bool personalized() const { return !weights.empty(); }

    /** Weight of the i-th term (1 when unweighted). */
    double
    weight(std::size_t i) const
    {
        return weights.empty() ? 1.0 : weights[i];
    }

    /** Human-readable form, for logs and examples. */
    std::string text(const Vocabulary &vocabulary) const;
};

} // namespace cottage

#endif // COTTAGE_TEXT_QUERY_H
