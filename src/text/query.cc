#include "text/query.h"

namespace cottage {

std::string
Query::text(const Vocabulary &vocabulary) const
{
    std::string out;
    for (std::size_t i = 0; i < terms.size(); ++i) {
        if (i > 0)
            out += ' ';
        out += vocabulary.term(terms[i]);
    }
    return out;
}

} // namespace cottage
