/**
 * @file
 * Synthetic Zipfian corpus generation.
 *
 * The paper indexes a 34M-document Wikipedia dump. We cannot ship that
 * here, so this generator produces a corpus with the statistical
 * properties Cottage's mechanisms actually depend on:
 *   - Zipf-distributed term popularity (heavy-tailed posting lists,
 *     hence heavy-tailed per-query work and latency — Fig. 2a);
 *   - per-document topical bias (documents about a topic repeat that
 *     topic's terms), so per-term score distributions vary across
 *     documents and shards (hence non-trivial quality prediction and
 *     the Gamma misfit of Fig. 6);
 *   - lognormal document lengths (BM25 length normalization variance).
 */

#ifndef COTTAGE_TEXT_CORPUS_H
#define COTTAGE_TEXT_CORPUS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "text/document.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace cottage {

/** Parameters of the synthetic corpus. */
struct CorpusConfig
{
    /** Number of documents to generate. */
    uint32_t numDocs = 120000;

    /** Vocabulary size (distinct terms of the synthetic language). */
    uint32_t vocabSize = 60000;

    /** Zipf exponent of the global term popularity distribution. */
    double zipfExponent = 1.2;

    /** Mean document length in tokens (lognormal across documents). */
    double meanDocLength = 160.0;

    /** Lognormal sigma of document lengths. */
    double docLengthSigma = 0.3;

    /** Number of latent topics used for per-document term bias. */
    uint32_t numTopics = 64;

    /** Fraction of tokens drawn from the document's topic slice. */
    double topicMix = 0.5;

    /**
     * When true, topics are assigned to contiguous DocId blocks (like
     * an alphabetically-ordered Wikipedia dump, where pages about one
     * subject cluster together); when false, each document draws its
     * topic independently. Clustered topics + the Topical partitioner
     * give shards distinct term profiles, the regime selective-search
     * systems (and Cottage's quality predictor) operate in.
     */
    bool clusteredTopics = true;

    /** Master seed; every derived stream is split from it. */
    uint64_t seed = 42;
};

/** A generated corpus: vocabulary plus documents. */
class Corpus
{
  public:
    /** Generate a corpus from the given configuration. */
    static Corpus generate(const CorpusConfig &config);

    const CorpusConfig &config() const { return config_; }
    const Vocabulary &vocabulary() const { return *vocabulary_; }
    const std::vector<Document> &documents() const { return documents_; }
    const Document &document(DocId id) const;
    uint32_t numDocs() const { return static_cast<uint32_t>(documents_.size()); }
    uint64_t totalTokens() const { return totalTokens_; }
    double averageDocLength() const;

  private:
    Corpus(const CorpusConfig &config);

    CorpusConfig config_;
    std::shared_ptr<Vocabulary> vocabulary_;
    std::vector<Document> documents_;
    uint64_t totalTokens_ = 0;
};

} // namespace cottage

#endif // COTTAGE_TEXT_CORPUS_H
