#include "text/trace.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace cottage {

namespace {

/** Per-flavor generation knobs. */
struct FlavorParams
{
    /** Probability of query lengths 1..4. */
    double lengthWeights[4];

    /** Zipf exponent for query-term popularity. */
    double termExponent;

    /**
     * Number of top vocabulary ranks (stopwords) excluded from queries;
     * users do not search for "the".
     */
    uint32_t stopwordRanks;

    /**
     * Zipf exponent of the mandatory content term. Every real query
     * carries at least one content-bearing (high-IDF) word — "canada
     * maple syrup", not "the of and" — and that term dominates the
     * BM25 sum. The content term is drawn from the vocabulary tail
     * beyond contentStart (see generate()).
     */
    double contentExponent;
};

FlavorParams
flavorParams(TraceFlavor flavor)
{
    switch (flavor) {
      case TraceFlavor::Wikipedia:
        // Short navigational queries over popular entities.
        return {{0.42, 0.36, 0.16, 0.06}, 0.85, 24, 0.8};
      case TraceFlavor::Lucene:
        // Longer, rarer-term queries: per-query work is more dispersed.
        return {{0.25, 0.38, 0.25, 0.12}, 0.65, 24, 0.55};
    }
    fatal("unknown trace flavor");
}

} // namespace

const char *
traceFlavorName(TraceFlavor flavor)
{
    switch (flavor) {
      case TraceFlavor::Wikipedia: return "wikipedia";
      case TraceFlavor::Lucene: return "lucene";
    }
    return "?";
}

QueryTrace
QueryTrace::generate(const TraceConfig &config)
{
    COTTAGE_CHECK_MSG(config.numQueries >= 1, "trace needs queries");
    COTTAGE_CHECK_MSG(config.arrivalQps > 0.0, "trace needs a positive QPS");

    const FlavorParams params = flavorParams(config.flavor);
    COTTAGE_CHECK_MSG(config.vocabSize > params.stopwordRanks + 4,
                      "vocabulary too small for query generation");

    Rng rng(config.seed);
    const ZipfSampler termPicker(config.vocabSize - params.stopwordRanks,
                                 params.termExponent);
    // Content terms live in the vocabulary tail (past the head of
    // globally-common words), matching the topic area of the synthetic
    // corpus: these are the entity/subject words of a query.
    const uint32_t contentStart =
        std::min<uint32_t>(256, config.vocabSize / 8);
    const ZipfSampler contentPicker(config.vocabSize - contentStart,
                                    params.contentExponent);
    const std::vector<double> lengthWeights(params.lengthWeights,
                                            params.lengthWeights + 4);

    COTTAGE_CHECK_MSG(config.burstiness >= 0.0 && config.burstiness < 1.0,
                      "burstiness must be in [0, 1)");

    QueryTrace trace;
    trace.name_ = traceFlavorName(config.flavor);
    trace.queries_.reserve(config.numQueries);
    double clock = 0.0;
    for (uint64_t i = 0; i < config.numQueries; ++i) {
        Query query;
        query.id = i;
        // Non-homogeneous Poisson arrivals (approximated by drawing
        // each gap at the instantaneous rate; exact for burstiness 0).
        double rate = config.arrivalQps;
        if (config.burstiness > 0.0) {
            rate *= 1.0 + config.burstiness *
                              std::sin(2.0 * M_PI * clock /
                                       config.burstPeriodSeconds);
        }
        clock += rng.exponential(rate);
        query.arrivalSeconds = clock;

        const std::size_t length = rng.discrete(lengthWeights) + 1;
        // Mandatory content term first.
        query.terms.push_back(static_cast<TermId>(
            contentStart + contentPicker.sample(rng) - 1));
        while (query.terms.size() < length) {
            const TermId term = static_cast<TermId>(
                params.stopwordRanks + termPicker.sample(rng) - 1);
            if (std::find(query.terms.begin(), query.terms.end(), term) ==
                query.terms.end()) {
                query.terms.push_back(term);
            }
        }
        if (config.personalizedFraction > 0.0 &&
            rng.bernoulli(config.personalizedFraction)) {
            query.weights.reserve(query.terms.size());
            for (std::size_t t = 0; t < query.terms.size(); ++t)
                query.weights.push_back(rng.uniform(
                    config.minTermWeight, config.maxTermWeight));
        }
        trace.queries_.push_back(std::move(query));
    }
    return trace;
}

QueryTrace
QueryTrace::load(std::istream &in)
{
    QueryTrace trace;
    std::string line;
    QueryId id = 0;
    while (std::getline(in, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        const std::vector<std::string> fields = splitWhitespace(line);
        if (fields.size() < 2)
            fatal("trace line needs 'arrival term...': " + line);
        Query query;
        query.id = id++;
        query.arrivalSeconds = std::stod(fields[0]);
        for (std::size_t i = 1; i < fields.size(); ++i)
            query.terms.push_back(
                static_cast<TermId>(std::stoul(fields[i])));
        trace.queries_.push_back(std::move(query));
    }
    return trace;
}

void
QueryTrace::save(std::ostream &out) const
{
    out << "# cottage query trace: " << name_ << "\n";
    const auto oldPrecision = out.precision(12);
    for (const Query &query : queries_) {
        out << query.arrivalSeconds;
        for (TermId term : query.terms)
            out << ' ' << term;
        out << '\n';
    }
    out.precision(oldPrecision);
}

double
QueryTrace::durationSeconds() const
{
    return queries_.empty() ? 0.0 : queries_.back().arrivalSeconds;
}

void
QueryTrace::append(Query query)
{
    query.id = queries_.size();
    queries_.push_back(std::move(query));
}

} // namespace cottage
