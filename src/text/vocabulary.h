/**
 * @file
 * Term vocabulary: a bidirectional mapping between term strings and
 * dense TermIds, ordered by popularity rank (TermId 0 is the most
 * frequent term of the synthetic language).
 *
 * The most popular ranks are given real English words (including the
 * paper's example queries "canada", "tokyo", "toyota") so that example
 * programs read naturally; the rest are synthetic "term_<rank>" forms.
 */

#ifndef COTTAGE_TEXT_VOCABULARY_H
#define COTTAGE_TEXT_VOCABULARY_H

#include <string>
#include <unordered_map>
#include <vector>

#include "text/types.h"

namespace cottage {

/** Popularity-ranked term vocabulary. */
class Vocabulary
{
  public:
    /**
     * Build a synthetic vocabulary of @p size terms. The first terms
     * take names from an embedded English word list, the remainder are
     * "term_<id>".
     */
    explicit Vocabulary(std::size_t size);

    /** Number of terms. */
    std::size_t size() const { return terms_.size(); }

    /** String form of a term. */
    const std::string &term(TermId id) const;

    /**
     * Look up a term string (case-insensitive). Returns invalidTerm
     * when absent.
     */
    TermId lookup(const std::string &text) const;

    /**
     * Tokenize free text into TermIds, dropping unknown tokens. This is
     * the query-side analyzer used by the examples.
     */
    std::vector<TermId> tokenize(const std::string &text) const;

  private:
    std::vector<std::string> terms_;
    std::unordered_map<std::string, TermId> byName_;
};

} // namespace cottage

#endif // COTTAGE_TEXT_VOCABULARY_H
