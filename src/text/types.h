/**
 * @file
 * Fundamental identifier types shared by the text, index and engine
 * layers.
 */

#ifndef COTTAGE_TEXT_TYPES_H
#define COTTAGE_TEXT_TYPES_H

#include <cstdint>

namespace cottage {

/** Identifier of a term in the vocabulary (dense, 0-based). */
using TermId = uint32_t;

/** Identifier of a document in the corpus (dense, 0-based, global). */
using DocId = uint32_t;

/** Identifier of an ISN / shard. */
using ShardId = uint32_t;

/** Identifier of a query within a trace. */
using QueryId = uint64_t;

/** Sentinel for "no term". */
constexpr TermId invalidTerm = UINT32_MAX;

/** Sentinel for "no document". */
constexpr DocId invalidDoc = UINT32_MAX;

} // namespace cottage

#endif // COTTAGE_TEXT_TYPES_H
