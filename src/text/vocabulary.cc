#include "text/vocabulary.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace cottage {

namespace {

/**
 * Readable names for the head of the vocabulary: function words and
 * very common nouns (the stopword zone query generation skips, plus
 * the popular general terms multi-term queries mix in).
 */
const char *const seedWords[] = {
    "the", "of", "and", "in", "to", "a", "was", "is", "for", "as",
    "on", "with", "by", "he", "at", "from", "his", "that", "it", "an",
    "world", "history", "city", "state", "national", "university",
    "music", "film", "river", "island", "league", "season", "war",
    "army", "church", "school", "county", "south", "north", "east",
    "west", "king", "queen", "president", "party", "family", "album",
    "band", "song", "art", "author", "language", "century", "empire",
    "government", "law", "court", "military", "battle", "railway",
    "station", "bridge", "mountain", "lake", "sea", "coast", "trade",
    "company", "bank", "market", "power", "engine", "car", "train",
    "ship", "computer", "network", "data", "search", "query",
};

/**
 * Readable names for *content-area* ranks (the topical tail beyond
 * rank 256 where query generation draws its mandatory content term).
 * Includes the paper's running-example queries "canada", "tokyo" and
 * "toyota". Spaced across the tail so they land in different topic
 * slices of the synthetic corpus.
 */
const char *const contentWords[] = {
    "canada",    "tokyo",     "toyota",    "wikipedia", "ottawa",
    "quebec",    "osaka",     "kyoto",     "honda",     "nissan",
    "bavaria",   "saxony",    "provence",  "tuscany",   "kyushu",
    "ontario",   "alberta",   "yukon",     "nagoya",    "sapporo",
    "yokohama",  "marseille", "lyon",      "florence",  "venice",
    "kilimanjaro", "andes",   "danube",    "rhine",     "amazonas",
    "sahara",    "gobi",      "everest",   "fuji",      "vesuvius",
    "beethoven", "mozart",    "chopin",    "vivaldi",   "brahms",
    "newton",    "einstein",  "darwin",    "curie",     "tesla",
    "chess",     "sudoku",    "origami",   "ikebana",   "karate",
};

/** Content words are placed at these spaced tail ranks. */
constexpr std::size_t contentStartRank = 261;
constexpr std::size_t contentRankStride = 37;

} // namespace

Vocabulary::Vocabulary(std::size_t size)
{
    COTTAGE_CHECK_MSG(size >= 1, "vocabulary needs at least one term");
    terms_.reserve(size);
    const std::size_t seedCount = sizeof(seedWords) / sizeof(seedWords[0]);
    const std::size_t contentCount =
        sizeof(contentWords) / sizeof(contentWords[0]);
    for (std::size_t i = 0; i < size; ++i) {
        if (i < seedCount) {
            terms_.emplace_back(seedWords[i]);
            continue;
        }
        if (i >= contentStartRank &&
            (i - contentStartRank) % contentRankStride == 0) {
            const std::size_t slot =
                (i - contentStartRank) / contentRankStride;
            if (slot < contentCount) {
                terms_.emplace_back(contentWords[slot]);
                continue;
            }
        }
        terms_.emplace_back(strformat("term_%06zu", i));
    }
    byName_.reserve(size * 2);
    for (std::size_t i = 0; i < terms_.size(); ++i)
        byName_.emplace(terms_[i], static_cast<TermId>(i));
}

const std::string &
Vocabulary::term(TermId id) const
{
    COTTAGE_CHECK(id < terms_.size());
    return terms_[id];
}

TermId
Vocabulary::lookup(const std::string &text) const
{
    const auto it = byName_.find(toLower(text));
    return it == byName_.end() ? invalidTerm : it->second;
}

std::vector<TermId>
Vocabulary::tokenize(const std::string &text) const
{
    std::vector<TermId> ids;
    for (const std::string &token : splitWhitespace(text)) {
        const TermId id = lookup(token);
        if (id != invalidTerm)
            ids.push_back(id);
    }
    return ids;
}

} // namespace cottage
